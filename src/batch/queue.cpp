#include "batch/queue.h"

#include "util/error.h"

namespace neutral::batch {

JobQueue::JobQueue(std::size_t capacity, QueuePolicy policy)
    : capacity_(capacity), policy_(policy) {
  NEUTRAL_REQUIRE(capacity > 0, "job queue capacity must be positive");
  NEUTRAL_REQUIRE(policy.max_queue_wait.count() >= 0 &&
                      policy.max_run_wall.count() >= 0,
                  "queue policy durations must be non-negative");
}

PushOutcome JobQueue::push_locked(
    Job&& job, std::unique_lock<std::mutex>& lock, bool blocking,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const std::uint64_t group = job.group;
  auto cancelled = [&] {
    return group != 0 && cancelled_groups_.count(group) != 0;
  };
  auto unblocked = [&] {
    return closed_ || cancelled() || heap_.size() < capacity_;
  };
  if (blocking) {
    if (deadline.has_value()) {
      not_full_.wait_until(lock, *deadline, unblocked);
    } else {
      not_full_.wait(lock, unblocked);
    }
  }
  if (closed_ || cancelled()) return PushOutcome::kRefused;
  if (heap_.size() >= capacity_) {
    // Still full: a timed wait expired (kTimedOut — the queue is alive and
    // retrying may succeed) or this was a try_push.
    return deadline.has_value() ? PushOutcome::kTimedOut
                                : PushOutcome::kRefused;
  }
  heap_.push(Entry{job.priority, next_sequence_++, std::move(job)});
  not_empty_.notify_one();
  return PushOutcome::kAccepted;
}

std::vector<Job> JobQueue::cancel_pending(std::uint64_t group) {
  std::vector<Job> removed;
  if (group == 0) return removed;  // 0 = ungrouped, nothing to cancel
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_groups_.insert(group);
    if (!heap_.empty()) {
      // std::priority_queue cannot remove from the middle: drain and
      // rebuild.  Sequence numbers are preserved, so survivors keep their
      // FIFO order within each priority level.
      std::vector<Entry> keep;
      keep.reserve(heap_.size());
      while (!heap_.empty()) {
        Entry e = std::move(const_cast<Entry&>(heap_.top()));
        heap_.pop();
        if (e.job.group == group) {
          removed.push_back(std::move(e.job));
        } else {
          keep.push_back(std::move(e));
        }
      }
      for (Entry& e : keep) heap_.push(std::move(e));
    }
  }
  // Removing jobs frees capacity; a cancelled group also unblocks its own
  // producer, which must observe the refusal.
  not_full_.notify_all();
  return removed;
}

void JobQueue::forget_group(std::uint64_t group) {
  if (group == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  cancelled_groups_.erase(group);
}

bool JobQueue::group_cancelled(std::uint64_t group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return group != 0 && cancelled_groups_.count(group) != 0;
}

std::size_t JobQueue::cancelled_group_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_groups_.size();
}

PushOutcome JobQueue::push(Job job) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (policy_.max_queue_wait.count() > 0) {
    deadline = std::chrono::steady_clock::now() + policy_.max_queue_wait;
  }
  return push_locked(std::move(job), lock, /*blocking=*/true, deadline);
}

PushOutcome JobQueue::push_until(
    Job job, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  return push_locked(std::move(job), lock, /*blocking=*/true, deadline);
}

bool JobQueue::try_push(Job job) {
  std::unique_lock<std::mutex> lock(mutex_);
  return push_locked(std::move(job), lock, /*blocking=*/false,
                     std::nullopt) == PushOutcome::kAccepted;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || !heap_.empty(); });
  if (heap_.empty()) return std::nullopt;  // closed and drained
  // priority_queue::top() is const; the move is safe because the entry is
  // popped before anyone else can observe it.
  Job job = std::move(const_cast<Entry&>(heap_.top()).job);
  heap_.pop();
  not_full_.notify_one();
  return job;
}

std::optional<Job> JobQueue::pop_until(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_until(lock, deadline,
                        [&] { return closed_ || !heap_.empty(); });
  if (heap_.empty()) return std::nullopt;  // closed, drained, or timed out
  Job job = std::move(const_cast<Entry&>(heap_.top()).job);
  heap_.pop();
  not_full_.notify_one();
  return job;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

}  // namespace neutral::batch
