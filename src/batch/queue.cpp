#include "batch/queue.h"

#include "util/error.h"

namespace neutral::batch {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  NEUTRAL_REQUIRE(capacity > 0, "job queue capacity must be positive");
}

bool JobQueue::push_locked(Job&& job, std::unique_lock<std::mutex>& lock,
                          bool blocking) {
  if (blocking) {
    not_full_.wait(lock,
                   [&] { return closed_ || heap_.size() < capacity_; });
  }
  if (closed_ || heap_.size() >= capacity_) return false;
  heap_.push(Entry{job.priority, next_sequence_++, std::move(job)});
  not_empty_.notify_one();
  return true;
}

bool JobQueue::push(Job job) {
  std::unique_lock<std::mutex> lock(mutex_);
  return push_locked(std::move(job), lock, /*blocking=*/true);
}

bool JobQueue::try_push(Job job) {
  std::unique_lock<std::mutex> lock(mutex_);
  return push_locked(std::move(job), lock, /*blocking=*/false);
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || !heap_.empty(); });
  if (heap_.empty()) return std::nullopt;  // closed and drained
  // priority_queue::top() is const; the move is safe because the entry is
  // popped before anyone else can observe it.
  Job job = std::move(const_cast<Entry&>(heap_.top()).job);
  heap_.pop();
  not_full_.notify_one();
  return job;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

}  // namespace neutral::batch
