// Batch job: one fully-specified solve awaiting execution.
//
// A Job is a value — deck plus every §V/§VI configuration knob, carried in
// a SimulationConfig — tagged with the scheduling metadata the engine
// needs: a stable id (unique within a batch; report rows and callbacks are
// keyed by it), a priority (higher pops first), and the fingerprint of the
// deck's world so the engine can route jobs with identical geometry to one
// cached World (batch/world_cache.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "core/simulation.h"
#include "core/world.h"

namespace neutral::batch {

struct Job {
  /// Stable identifier, unique within one batch submission.
  std::uint64_t id = 0;
  /// Fork-join group; 0 = ungrouped.  When a grouped job fails, the engine
  /// cancels its still-pending siblings (JobQueue::cancel_pending) instead
  /// of letting them waste the pool.
  std::uint64_t group = 0;
  /// Higher-priority jobs pop from the queue first; ties are FIFO.
  std::int32_t priority = 0;
  /// Short human label for report rows ("csp/over-events/SoA/n=4000").
  std::string label;
  /// The complete run description.  config.threads > 0 pins this job's
  /// OpenMP team size; 0 lets the engine apply its per-job budget.
  SimulationConfig config;
  /// world_fingerprint(config.deck), precomputed at submission.
  std::uint64_t fingerprint = 0;
  /// Absolute deadline by which the job must START running; a worker
  /// popping an expired job completes it as timed_out without running it
  /// (and cancels its group like a failure).  time_point::max() = none.
  /// The engine stamps this from QueuePolicy::max_queue_wait at submission
  /// when the submitter left it unset; an earlier submitter deadline wins.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Custom work: when set, the worker runs this instead of constructing a
  /// Simulation from `config` — the hook that lets stateful fork-join
  /// phases (domain-decomposition transport rounds, which keep per-
  /// subdomain Simulations alive across calls) ride the worker pool.  The
  /// functor runs on a worker thread; exceptions mark the job failed, and
  /// group cancellation applies as usual.  The world cache is bypassed.
  std::function<RunResult()> work;
};

/// Construct a job, filling in the fingerprint and a default label.
Job make_job(std::uint64_t id, SimulationConfig config,
             std::int32_t priority = 0, std::string label = "");

/// "deck/scheme/layout/n=<particles>" — the default row label.
std::string describe(const SimulationConfig& config);

}  // namespace neutral::batch
