#include "batch/job.h"

namespace neutral::batch {

std::string describe(const SimulationConfig& config) {
  return config.deck.name + "/" + to_string(config.scheme) + "/" +
         to_string(config.layout) + "/" + config.schedule.name() + "/nx=" +
         std::to_string(config.deck.nx) + "/n=" +
         std::to_string(config.deck.n_particles);
}

Job make_job(std::uint64_t id, SimulationConfig config, std::int32_t priority,
             std::string label) {
  Job job;
  job.id = id;
  job.priority = priority;
  job.fingerprint = world_fingerprint(config.deck);
  job.label = label.empty() ? describe(config) : std::move(label);
  job.config = std::move(config);
  return job;
}

}  // namespace neutral::batch
