// Parameter-sweep expansion: one base configuration + axis lists -> a job
// list for the batch engine.
//
// Benchmarks and studies in this repo all share the same shape — nested
// loops over (problem size, scheme, layout, schedule, seed) around one
// solve — previously hand-rolled in every bench/ binary.  A SweepSpec
// declares the base SimulationConfig and the axes to vary; expand_sweep()
// emits the full cross product with stable job ids (row-major in the axis
// order below), so the same spec always yields the same jobs.
//
// Seeding: an explicit `axis seed` lists master seeds as sweep points
// (replicate studies).  Otherwise, a non-zero batch_seed gives every job
// an independent substream via rng::derive_stream_seed(batch_seed, job id)
// — statistically independent jobs whose results still depend only on
// their own config, never on batch composition.  With neither, all jobs
// keep the base deck's seed (cross-scheme comparisons want identical
// histories).
//
// Text format (parse_sweep; `#` comments, `key value...` lines):
//
//   deck <stream|scatter|csp>   named base deck, or:
//   deck_file <path.params>     load a custom deck
//   mesh_scale <f>              base mesh scale for named decks
//   particle_scale <f>          base particle scale for named decks
//   scheme/layout/tally/lookup/schedule <name>   base config knobs
//   threads <n>                 per-job OpenMP threads (0 = engine budget)
//   rng_batch <0|1>             batched RNG draws (bit-identical sequence)
//   branchless_events <0|1>     select-based event search/facet math
//   sort_events <0|1>           event-sorted over-events traversal
//   tally_direct <0|1>          non-atomic deposits on 1-thread jobs
//   fuse_rounds <0|1>           fused over-events search+handler sweep
//   pipeline_histories <k>      K in-flight histories per thread (>= 1)
//   timesteps/particles/seed <n>  deck overrides
//   batch_seed <n>              per-job substream derivation (see above)
//   priority <n>                queue priority for every expanded job
//   axis particles <n...>       sweep axes (cross product):
//   axis mesh_scale <f...>        regenerates named decks per scale
//   axis nx <n...>                raw nx=ny override (custom decks)
//   axis scheme <s...>
//   axis layout <l...>
//   axis schedule <s...>
//   axis seed <n...>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/job.h"
#include "core/simulation.h"

namespace neutral::batch {

struct SweepAxes {
  std::vector<double> mesh_scales;        ///< named decks only
  std::vector<std::int32_t> nx;           ///< sets nx = ny directly
  std::vector<std::int64_t> particles;
  std::vector<Scheme> schemes;
  std::vector<Layout> layouts;
  std::vector<SchedulePolicy> schedules;
  std::vector<std::uint64_t> seeds;
};

struct SweepSpec {
  /// Base configuration every job starts from (deck included).
  SimulationConfig base;
  /// True when the spec named a tally mode (`tally <mode>`).  expand_sweep
  /// only applies the §VI-G over-events default (atomic -> deferred) when
  /// the mode was NOT named — an explicit choice is never rewritten.  The
  /// effective mode is recorded per row in the neutral_batch CSV either
  /// way, so sweep rows are self-describing.
  bool tally_mode_named = false;
  /// Name passed to deck_by_name for the mesh_scale axis; empty for custom
  /// decks (then `axis mesh_scale` is an error).
  std::string deck_name;
  /// Base particle scale forwarded to deck_by_name on the mesh_scale axis.
  double particle_scale = 1.0;
  SweepAxes axes;
  /// Non-zero: derive each job's deck seed from (batch_seed, job id).
  std::uint64_t batch_seed = 0;
  /// Priority stamped on every expanded job.
  std::int32_t priority = 0;
};

/// Number of jobs expand_sweep will emit (product of non-empty axes).
std::size_t sweep_size(const SweepSpec& spec);

/// Expand the cross product.  Job ids are 0..sweep_size-1 in a fixed
/// row-major axis order, so expansion is deterministic.
std::vector<Job> expand_sweep(const SweepSpec& spec);

/// Parse / load the text spec format documented above.
SweepSpec parse_sweep(const std::string& text);
SweepSpec load_sweep(const std::string& path);

}  // namespace neutral::batch
