// Bounded MPMC job queue with priority ordering and graceful shutdown.
//
// The engine's producer pushes jobs while N workers pop; both sides block
// on condition variables, so a bounded capacity applies back-pressure to
// submission instead of buffering an entire sweep in memory.  Ordering is
// by descending priority, FIFO within a priority level (a monotonic
// sequence number breaks ties, so equal-priority jobs run in submission
// order and the pop order is deterministic for a single consumer).
//
// Shutdown protocol: close() wakes everyone; pushes after close() are
// refused, pops drain whatever is still queued and then return nullopt.
// Workers therefore exit exactly when the queue is closed AND empty —
// jobs in flight at close() still complete.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "batch/job.h"

namespace neutral::batch {

class JobQueue {
 public:
  /// `capacity` > 0: push() blocks while that many jobs are queued.
  explicit JobQueue(std::size_t capacity);

  /// Blocks while full.  Returns false (dropping `job`) iff the queue was
  /// closed before space became available.
  bool push(Job job);

  /// Non-blocking push: false when full or closed.
  bool try_push(Job job);

  /// Blocks while empty.  Returns the highest-priority job, or nullopt
  /// once the queue is closed and fully drained.
  std::optional<Job> pop();

  /// Refuse further pushes and wake all waiters; queued jobs stay poppable.
  void close();

  /// Remove every still-queued job of `group` (0 is ungrouped and a no-op)
  /// and remember the group as cancelled: later pushes of its jobs are
  /// refused, so a producer mid-submission cannot resurrect it.  Jobs of
  /// the group already popped are unaffected.  Returns the removed jobs so
  /// the caller can record their outcomes.
  std::vector<Job> cancel_pending(std::uint64_t group);

  [[nodiscard]] bool closed() const;
  [[nodiscard]] bool group_cancelled(std::uint64_t group) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::int32_t priority;
    std::uint64_t sequence;
    Job job;
  };
  struct EntryOrder {
    // std::priority_queue is a max-heap: "less" means "pops later".
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.sequence > b.sequence;  // earlier submission pops first
    }
  };

  bool push_locked(Job&& job, std::unique_lock<std::mutex>& lock,
                   bool blocking);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::priority_queue<Entry, std::vector<Entry>, EntryOrder> heap_;
  std::unordered_set<std::uint64_t> cancelled_groups_;
  std::uint64_t next_sequence_ = 0;
  bool closed_ = false;
};

}  // namespace neutral::batch
