// Bounded MPMC job queue with priority ordering, aging, deadlines and
// graceful shutdown.
//
// The engine's producer pushes jobs while N workers pop; both sides block
// on condition variables, so a bounded capacity applies back-pressure to
// submission instead of buffering an entire sweep in memory.  Ordering is
// by descending priority, FIFO within a priority level (a monotonic
// sequence number breaks ties, so equal-priority jobs run in submission
// order and the pop order is deterministic for a single consumer).
//
// Priority aging: with QueuePolicy::priority_aging = T > 0, a queued job's
// effective priority grows by one level per T waited, so a saturating
// stream of high-priority work cannot starve low-priority jobs forever.
// The trick that keeps the heap static: eff(t) = priority + (t - enqueue)/T
// orders any two queued jobs identically at every instant (the `t` term
// cancels in the comparison), so the queue stores the time-invariant rank
// priority - (enqueue - epoch)/T computed once at push and never reorders.
// T = 0 (the default) disables aging and reproduces the strict-priority
// ordering bit-for-bit.
//
// Deadlines: a fork-join CLI can afford to block forever — a daemon
// cannot.  push_until()/pop_until() bound any wait with
// condition_variable::wait_until, and a QueuePolicy::max_queue_wait makes
// plain push() timed as well, so a producer whose consumers died gets a
// kTimedOut (distinct from kRefused: the queue is alive, just saturated)
// instead of hanging.  The sit-in-queue half of max_queue_wait is enforced
// by the engine via Job::deadline (batch/job.h).
//
// Shutdown protocol: close() wakes everyone; pushes after close() are
// refused, pops drain whatever is still queued and then return nullopt.
// Workers therefore exit exactly when the queue is closed AND empty —
// jobs in flight at close() still complete.
//
// Cancellation is lazy: cancel_pending() marks the group's entries dead in
// place (O(matches), no heap rebuild) and pop() purges dead entries as
// they surface at the top, O(log n) amortized.  Capacity and size() count
// live entries only, so tombstones never block producers.  The group is
// also remembered as cancelled so a producer mid-submission cannot
// resurrect it, and forget_group() evicts that tombstone once the caller
// has accounted for every job of the group — without it the set grows one
// entry per cancelled group for the life of the queue (the
// unbounded-memory bug a long-running daemon hits).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "batch/job.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace neutral::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace neutral::obs

namespace neutral::batch {

/// Deadline/fairness policy for long-lived queue/engine deployments.  Zero
/// means "unbounded"/"off" — the fork-join CLI default, where waits are
/// known finite and strict priority is what the caller asked for.
struct QueuePolicy {
  /// Bounds (a) how long a producer blocks in push() and (b) how long a
  /// job may sit queued before a worker pops it: the engine stamps
  /// Job::deadline from this, and an expired job completes as timed_out
  /// without running.
  std::chrono::milliseconds max_queue_wait{0};
  /// Bounds one job's running wall clock.  Enforced by the engine through
  /// the cooperative SimulationConfig::deadline (checked at timestep and
  /// transport-round boundaries); an expired run completes as timed_out
  /// and cancels its group like a failure.
  std::chrono::milliseconds max_run_wall{0};
  /// Priority aging interval: a queued job gains one effective priority
  /// level per this much wait, so priority-0 work overtakes a saturating
  /// priority-9 stream after at most 9 intervals.  Zero = strict priority.
  std::chrono::milliseconds priority_aging{0};
};

/// Result of a (possibly timed) push.  kRefused = the queue is closed or
/// the job's group is cancelled — retrying is pointless.  kTimedOut = the
/// queue stayed full past the deadline — the queue is alive and a caller
/// with slack may retry; a daemon reports the two differently.
enum class PushOutcome : std::uint8_t { kAccepted, kRefused, kTimedOut };

class JobQueue {
 public:
  /// `capacity` > 0: push() blocks while that many live jobs are queued.
  /// `policy.max_queue_wait` > 0 bounds that blocking (see push()).
  /// A non-null `metrics` registers the queue's series there (depth gauge,
  /// push/pop wait histograms, per-outcome counters); null costs nothing.
  explicit JobQueue(std::size_t capacity, QueuePolicy policy = {},
                    obs::MetricsRegistry* metrics = nullptr);

  /// Blocks while full — forever when policy.max_queue_wait is zero, else
  /// at most that long (returning kTimedOut, dropping `job`).  kRefused
  /// (also dropping `job`) iff the queue was closed or the job's group
  /// cancelled before space became available.
  PushOutcome push(Job job) NEUTRAL_EXCLUDES(mutex_);

  /// push() with an explicit absolute deadline (steady clock).
  PushOutcome push_until(Job job,
                         std::chrono::steady_clock::time_point deadline)
      NEUTRAL_EXCLUDES(mutex_);

  /// Non-blocking push: false when full, closed or group-cancelled.
  bool try_push(Job job) NEUTRAL_EXCLUDES(mutex_);

  /// Blocks while empty.  Returns the highest-ranked live job, or nullopt
  /// once the queue is closed and fully drained.
  std::optional<Job> pop() NEUTRAL_EXCLUDES(mutex_);

  /// pop() with an absolute deadline: nullopt when the deadline passes
  /// with the queue still empty (distinguish from shutdown via closed()).
  std::optional<Job> pop_until(std::chrono::steady_clock::time_point deadline)
      NEUTRAL_EXCLUDES(mutex_);

  /// Refuse further pushes and wake all waiters; queued jobs stay poppable.
  void close() NEUTRAL_EXCLUDES(mutex_);

  /// Mark every still-queued job of `group` (0 is ungrouped and a no-op)
  /// dead — lazily: entries stay in the heap and pop() discards them as
  /// they surface — and remember the group as cancelled: later pushes of
  /// its jobs are refused, so a producer mid-submission cannot resurrect
  /// it.  Jobs of the group already popped are unaffected.  Returns the
  /// removed jobs (in submission order) so the caller can record their
  /// outcomes.
  std::vector<Job> cancel_pending(std::uint64_t group)
      NEUTRAL_EXCLUDES(mutex_);

  /// Evict `group`'s cancellation tombstone.  Call once the last job of
  /// the group has been accounted for (no more pushes can arrive) — the
  /// engine does, keeping the tombstone set bounded by the number of
  /// groups currently in flight instead of ever cancelled.
  void forget_group(std::uint64_t group) NEUTRAL_EXCLUDES(mutex_);

  [[nodiscard]] bool closed() const NEUTRAL_EXCLUDES(mutex_);
  [[nodiscard]] bool group_cancelled(std::uint64_t group) const
      NEUTRAL_EXCLUDES(mutex_);
  /// Tombstones currently resident — a long-lived queue must keep this
  /// bounded (regression-tested).
  [[nodiscard]] std::size_t cancelled_group_count() const
      NEUTRAL_EXCLUDES(mutex_);
  /// Live (poppable) jobs; dead entries are excluded.
  [[nodiscard]] std::size_t size() const NEUTRAL_EXCLUDES(mutex_);
  /// Cancelled entries still physically in the heap, awaiting lazy
  /// eviction by pop().  Observable so tests can prove cancellation did
  /// NOT rebuild the heap.
  [[nodiscard]] std::size_t dead_entries() const NEUTRAL_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const QueuePolicy& policy() const { return policy_; }

 private:
  struct Entry {
    double rank;  // priority + aging credit; time-invariant, set at push
    std::uint64_t sequence;
    bool dead;  // lazily cancelled: pop() discards instead of returning
    Job job;
  };
  struct EntryOrder {
    // Used with std::push_heap/pop_heap (max-heap): "less" = pops later.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.rank != b.rank) return a.rank < b.rank;
      return a.sequence > b.sequence;  // earlier submission pops first
    }
  };

  [[nodiscard]] double rank_of(const Job& job) const;
  PushOutcome push_locked(
      Job&& job, MutexLock& lock, bool blocking,
      std::optional<std::chrono::steady_clock::time_point> deadline)
      NEUTRAL_REQUIRES(mutex_);
  /// Purge dead entries sitting at the heap top so heap_.front() is live
  /// whenever live_ > 0.
  void drop_dead_top_locked() NEUTRAL_REQUIRES(mutex_);
  Job take_top_locked() NEUTRAL_REQUIRES(mutex_);
  void note_depth_locked() NEUTRAL_REQUIRES(mutex_);
  void note_push_outcome(PushOutcome outcome, double wait_seconds);
  [[nodiscard]] bool group_cancelled_locked(std::uint64_t group) const
      NEUTRAL_REQUIRES(mutex_);

  const std::size_t capacity_;
  const QueuePolicy policy_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mutex_;
  CondVar not_full_;
  CondVar not_empty_;
  // Managed with std::push_heap/std::pop_heap.
  std::vector<Entry> heap_ NEUTRAL_GUARDED_BY(mutex_);
  // heap_ entries with !dead.
  std::size_t live_ NEUTRAL_GUARDED_BY(mutex_) = 0;
  std::unordered_set<std::uint64_t> cancelled_groups_
      NEUTRAL_GUARDED_BY(mutex_);
  std::uint64_t next_sequence_ NEUTRAL_GUARDED_BY(mutex_) = 0;
  bool closed_ NEUTRAL_GUARDED_BY(mutex_) = false;

  // Null when the queue is unobserved (the default); resolved once in the
  // ctor so the hot paths never look anything up by name.
  obs::Gauge* depth_ = nullptr;
  obs::Histogram* push_wait_ = nullptr;
  obs::Histogram* pop_wait_ = nullptr;
  obs::Counter* pushed_ = nullptr;
  obs::Counter* refused_ = nullptr;
  obs::Counter* push_timed_out_ = nullptr;
};

}  // namespace neutral::batch
