// Batch execution engine: run many jobs concurrently on a worker pool.
//
// The engine wires the batch pieces together: jobs flow through a bounded
// priority JobQueue to N std::thread workers; each worker resolves its
// job's World through the shared WorldCache, constructs a Simulation
// against it, and runs with a nested OpenMP team of `threads_per_job`
// threads.  Because OpenMP's nthreads setting is per host thread, worker
// teams do not interfere: the node runs workers x threads_per_job hot
// threads.
//
// Oversubscription policy: workers x threads_per_job <= hw_concurrency
// (probe_host().logical_cpus).  Defaults derive one from the other, and
// an explicit threads_per_job is clamped to the per-worker budget —
// concurrency across jobs beats parallelism within one (the paper's load
// imbalance means a lone job can't keep a node busy anyway).  An explicit
// worker count is honoured as given, even beyond the cpu count (useful
// for tests and I/O-bound jobs); threads_per_job then pins to 1.
//
// Determinism: a job's physics depends only on its SimulationConfig (the
// RNG is counter-based, keyed by deck.seed — rng/stream.h), so per-job
// results are invariant to worker count and completion order.  The report
// lists outcomes in submission order regardless of completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "batch/job.h"
#include "batch/queue.h"
#include "batch/world_cache.h"
#include "core/simulation.h"

namespace neutral::obs {
class MetricsRegistry;
class TraceLog;
}  // namespace neutral::obs

namespace neutral::batch {

struct EngineOptions {
  /// Worker threads; 0 = min(logical cpus, job count).
  std::int32_t workers = 0;
  /// OpenMP threads per job; 0 = logical cpus / workers (>= 1).
  std::int32_t threads_per_job = 0;
  /// Bounded queue depth; 0 = max(2 x workers, 16).
  std::size_t queue_capacity = 0;
  /// Share Worlds between jobs with identical geometry.
  bool reuse_worlds = true;
  /// World cache byte budget / eviction policy.
  WorldCacheOptions cache;
  /// When a grouped job (Job::group != 0) fails, cancel its still-pending
  /// siblings instead of running them to completion — a failed shard's
  /// fork-join result is already lost, so its siblings are pure waste.
  bool cancel_failed_groups = true;
  /// Deadline policy for long-lived deployments (neutrald).  max_queue_wait
  /// bounds both a blocked push and a job's time in queue (stamped onto
  /// Job::deadline; an expired job completes as timed_out unrun).
  /// max_run_wall bounds each config-driven job's running wall clock via
  /// the cooperative SimulationConfig::deadline; custom-work jobs
  /// (Job::work) enforce their own — run_domains propagates the base
  /// config's deadline into every subdomain round.  Zero = unbounded, the
  /// fork-join CLI default.
  QueuePolicy policy;
  /// Optional registry: queue, cache, per-outcome and per-event series
  /// land there (src/obs/metrics.h).  Also forwarded to cache.metrics when
  /// that is unset.  Null = unobserved, no overhead beyond nullptr tests.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional JSONL lifecycle trace (submitted/queued/started/terminal
  /// spans per job — src/obs/trace.h).  Null = no trace.
  obs::TraceLog* trace = nullptr;
  /// Enable the §VI-A PhaseProfiler in every config-driven job (stamped
  /// onto SimulationConfig::profile), so BatchReport::phase_totals() can
  /// print the grind-time table aggregated across the sweep.  Custom-work
  /// jobs honour whatever their own configs say.
  bool profile = false;
};

/// One finished (or failed) job.
struct JobOutcome {
  std::uint64_t job_id = 0;
  std::string label;
  SimulationConfig config;     ///< as executed (threads budget filled in)
  RunResult result;            ///< default-constructed when !ok
  double seconds = 0.0;        ///< wall clock including world acquisition
  /// Seconds between submission and a worker popping the job (0 when the
  /// job never reached a worker).
  double queue_wait_seconds = 0.0;
  bool world_cache_hit = false;
  std::int32_t worker = -1;    ///< which worker ran it (-1: never ran)
  bool ok = false;
  bool cancelled = false;      ///< removed unrun after a sibling failed
  /// Subset of !ok: the job hit a QueuePolicy deadline — expired in the
  /// queue (max_queue_wait) or aborted mid-run (max_run_wall).  Kept
  /// distinct from plain failure so a serving layer can report
  /// `timed_out` and a client can retry with a longer budget.
  bool timed_out = false;
  std::string error;           ///< exception message when !ok
};

/// Aggregate result of one BatchEngine::run().
struct BatchReport {
  std::vector<JobOutcome> jobs;  ///< submission order
  double wall_seconds = 0.0;
  std::int32_t workers = 0;
  std::int32_t threads_per_job = 0;
  /// This run's hit/miss/eviction deltas plus the cache's current resident
  /// set (worlds and estimated bytes) at the end of the run.
  WorldCache::Stats cache;

  [[nodiscard]] std::size_t completed() const;
  [[nodiscard]] std::size_t failed() const;
  /// Subset of failed(): jobs cancelled unrun after a sibling failed.
  [[nodiscard]] std::size_t cancelled() const;
  /// Subset of failed(): jobs that hit a QueuePolicy deadline.
  [[nodiscard]] std::size_t timed_out() const;
  /// Sum of per-job transport events over the batch wall clock — the
  /// node-throughput figure batching exists to maximise.
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] double events_per_second() const;
  /// Sum of successful jobs' phase profiles — all-zero unless the engine
  /// (or the jobs' own configs) enabled profiling.  Feed through
  /// format_grind_table for the paper's §VI-A table over a whole sweep.
  [[nodiscard]] PhaseProfiler::Report phase_totals() const;
};

class BatchEngine {
 public:
  explicit BatchEngine(EngineOptions options = {});

  /// Serialised per-completion hook (called from worker threads under the
  /// engine lock, so implementations need no locking of their own).
  using CompletionCallback = std::function<void(const JobOutcome&)>;

  /// Run every job to completion and return the aggregated report.
  /// Job ids must be unique within the submission.  Safe to call
  /// repeatedly; the world cache persists across runs.
  BatchReport run(std::vector<Job> jobs,
                  const CompletionCallback& on_complete = {});

  /// The shared world cache (persists across run() calls).
  [[nodiscard]] WorldCache& cache() { return cache_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// The (workers, threads_per_job) pair run() would use for `n_jobs`,
  /// after applying the oversubscription policy.
  [[nodiscard]] std::pair<std::int32_t, std::int32_t> thread_budget(
      std::size_t n_jobs) const;

  /// The bounded queue depth run() would use with `workers` workers.
  [[nodiscard]] std::size_t queue_depth(std::int32_t workers) const;

 private:
  EngineOptions options_;
  std::int32_t hw_concurrency_;
  WorldCache cache_;
};

}  // namespace neutral::batch
