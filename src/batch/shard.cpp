#include "batch/shard.h"

#include <algorithm>

#include "core/validation.h"
#include "runtime/timer.h"
#include "util/error.h"

namespace neutral::batch {

std::vector<ParticleSpan> plan_shards(std::int64_t n_particles,
                                      std::int32_t shards) {
  NEUTRAL_REQUIRE(n_particles > 0, "cannot shard an empty particle bank");
  NEUTRAL_REQUIRE(shards >= 1, "shard count must be at least 1");
  const std::int64_t n_shards =
      std::min<std::int64_t>(shards, n_particles);
  const std::int64_t base = n_particles / n_shards;
  const std::int64_t remainder = n_particles % n_shards;

  std::vector<ParticleSpan> spans;
  spans.reserve(static_cast<std::size_t>(n_shards));
  std::int64_t first = 0;
  for (std::int64_t s = 0; s < n_shards; ++s) {
    const std::int64_t count = base + (s < remainder ? 1 : 0);
    spans.push_back(ParticleSpan{first, count});
    first += count;
  }
  return spans;
}

std::vector<Job> make_shard_jobs(const SimulationConfig& base,
                                 const ShardOptions& opt,
                                 std::uint64_t first_job_id,
                                 const std::string& label_prefix) {
  NEUTRAL_REQUIRE(base.span.whole_bank(),
                  "cannot shard a config that already has a particle span");
  NEUTRAL_REQUIRE(opt.group != 0,
                  "shard jobs need a non-zero fork-join group");
  const std::vector<ParticleSpan> spans =
      plan_shards(base.deck.n_particles, opt.shards);
  const std::uint64_t fingerprint = world_fingerprint(base.deck);
  const std::string prefix =
      label_prefix.empty() ? describe(base) + "/" : label_prefix;

  std::vector<Job> jobs;
  jobs.reserve(spans.size());
  for (std::size_t s = 0; s < spans.size(); ++s) {
    SimulationConfig config = base;
    config.span = spans[s];
    config.compensated_tally = true;
    config.keep_tally_image = true;
    if (opt.threads_per_shard > 0) config.threads = opt.threads_per_shard;
    // Compensated atomic updates are single-thread only; when the shard
    // may run wider (explicitly or via the engine budget), move to the
    // privatized tally — compensation makes its merge exact, so the
    // reduced result is unchanged.
    if (config.tally_mode == TallyMode::kAtomic && config.threads != 1) {
      config.tally_mode = TallyMode::kPrivatized;
    }

    Job job;
    job.id = first_job_id + s;
    job.group = opt.group;
    job.priority = opt.priority;
    job.fingerprint = fingerprint;
    job.label = prefix + "shard " + std::to_string(s) + "/" +
                std::to_string(spans.size()) + " [" +
                std::to_string(spans[s].first_id) + "," +
                std::to_string(spans[s].first_id + spans[s].count) + ")";
    job.config = std::move(config);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

RunResult reduce_shards(const std::vector<const RunResult*>& shard_results) {
  NEUTRAL_REQUIRE(!shard_results.empty(), "nothing to reduce");
  for (const RunResult* r : shard_results) {
    NEUTRAL_REQUIRE(r != nullptr && r->tally != nullptr,
                    "every shard result must carry a tally image "
                    "(SimulationConfig::keep_tally_image)");
  }
  const std::int64_t cells = shard_results.front()->tally->cells();

  RunResult merged;
  EnergyTally reduced(cells, TallyMode::kAtomic, /*threads=*/1,
                      /*compensated=*/true);
  for (const RunResult* r : shard_results) {
    merged += *r;
    reduced.accumulate(*r->tally);
  }
  reduced.merge();  // normalise: each cell is now its once-rounded total

  merged.tally_checksum = positional_checksum(reduced.data(), cells);
  merged.budget.tally_total = reduced.total();
  merged.tally = std::make_shared<const TallyImage>(reduced.image());
  return merged;
}

double ShardedRunReport::imbalance() const {
  double max_s = 0.0;
  double sum_s = 0.0;
  std::size_t n = 0;
  for (const JobOutcome& j : batch.jobs) {
    if (!j.ok) continue;
    max_s = std::max(max_s, j.seconds);
    sum_s += j.seconds;
    ++n;
  }
  return (n > 0 && sum_s > 0.0) ? max_s / (sum_s / static_cast<double>(n))
                                : 0.0;
}

GroupReduction reduce_outcome_group(const JobOutcome* outcomes,
                                    std::size_t count) {
  GroupReduction group;
  NEUTRAL_REQUIRE(outcomes != nullptr && count > 0,
                  "group reduction needs at least one outcome");

  // Report the root-cause failure, not a cancelled sibling that happens to
  // sit earlier in submission order.
  const JobOutcome* failure = nullptr;
  for (std::size_t s = 0; s < count; ++s) {
    const JobOutcome& outcome = outcomes[s];
    if (outcome.ok) continue;
    if (failure == nullptr || (failure->cancelled && !outcome.cancelled)) {
      failure = &outcome;
    }
  }
  if (failure != nullptr) {
    group.ok = false;
    group.timed_out = failure->timed_out;
    group.error = "shard " + std::to_string(failure->job_id) +
                  (failure->cancelled
                       ? " cancelled: "
                       : failure->timed_out ? " timed out: " : " failed: ") +
                  failure->error;
    return group;
  }

  std::vector<const RunResult*> results;
  results.reserve(count);
  double sum_seconds = 0.0;
  for (std::size_t s = 0; s < count; ++s) {
    results.push_back(&outcomes[s].result);
    group.max_shard_seconds =
        std::max(group.max_shard_seconds, outcomes[s].seconds);
    sum_seconds += outcomes[s].seconds;
  }
  group.mean_shard_seconds = sum_seconds / static_cast<double>(count);
  group.merged = reduce_shards(results);
  group.ok = true;
  return group;
}

ShardedRunReport run_sharded(BatchEngine& engine, const SimulationConfig& base,
                             const ShardOptions& opt,
                             const BatchEngine::CompletionCallback&
                                 on_complete) {
  ShardedRunReport report;
  report.spans = plan_shards(base.deck.n_particles, opt.shards);

  WallTimer wall;
  report.batch = engine.run(make_shard_jobs(base, opt), on_complete);
  report.wall_seconds = wall.seconds();

  GroupReduction group = reduce_outcome_group(report.batch.jobs.data(),
                                              report.batch.jobs.size());
  report.ok = group.ok;
  report.error = std::move(group.error);
  if (group.ok) report.merged = std::move(group.merged);
  return report;
}

}  // namespace neutral::batch
