#include "batch/world_cache.h"

#include "obs/metrics.h"

namespace neutral::batch {

WorldCache::WorldCache(WorldCacheOptions options) : options_(options) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    hits_ = &m.counter("neutral_world_cache_hits_total",
                       "world acquisitions served from the cache");
    misses_ = &m.counter("neutral_world_cache_misses_total",
                         "world acquisitions that built");
    evictions_ = &m.counter("neutral_world_cache_evictions_total",
                            "cached worlds dropped (failed builds + LRU)");
    resident_bytes_gauge_ = &m.gauge("neutral_world_cache_resident_bytes",
                                     "estimated bytes of cached worlds");
    resident_worlds_gauge_ = &m.gauge("neutral_world_cache_resident_worlds",
                                      "built worlds currently cached");
  }
}

void WorldCache::note_residency_locked() {
  if (resident_bytes_gauge_ == nullptr) return;
  resident_bytes_gauge_->set(static_cast<std::int64_t>(resident_bytes_));
  std::int64_t built = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (entry.built) ++built;
  }
  resident_worlds_gauge_->set(built);
}

std::shared_ptr<const World> WorldCache::acquire(const ProblemDeck& deck,
                                                 bool* hit) {
  return acquire(deck, world_fingerprint(deck), hit);
}

std::shared_ptr<const World> WorldCache::acquire(const ProblemDeck& deck,
                                                 std::uint64_t fingerprint,
                                                 bool* hit) {
  return acquire_keyed(fingerprint, [&deck] { return build_world(deck); },
                       hit);
}

std::shared_ptr<const World> WorldCache::acquire(const ProblemDeck& deck,
                                                 const DomainWindow& window,
                                                 bool* hit) {
  return acquire_keyed(domain_world_fingerprint(deck, window),
                       [&deck, &window] { return build_world(deck, window); },
                       hit);
}

std::shared_ptr<const World> WorldCache::acquire_keyed(std::uint64_t key,
                                                       const Builder& build,
                                                       bool* hit) {
  Future future;
  std::promise<std::shared_ptr<const World>> promise;
  bool builder = false;
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      if (hits_ != nullptr) hits_->add();
      it->second.last_use = ++tick_;
      future = it->second.future;
    } else {
      ++stats_.misses;
      if (misses_ != nullptr) misses_->add();
      builder = true;
      future = promise.get_future().share();
      entries_.emplace(key, Entry{future, ++tick_, 0, false});
    }
  }
  if (hit != nullptr) *hit = !builder;

  if (builder) {
    try {
      std::shared_ptr<const World> world = build();
      const std::uint64_t bytes = world->footprint_bytes();
      promise.set_value(std::move(world));
      MutexLock lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {  // clear() may have raced us
        it->second.bytes = bytes;
        it->second.built = true;
        resident_bytes_ += bytes;
        evict_over_budget_locked(key);
        note_residency_locked();
      }
    } catch (...) {
      promise.set_exception(std::current_exception());
      MutexLock lock(mutex_);
      entries_.erase(key);
      ++stats_.evictions;
      if (evictions_ != nullptr) evictions_->add();
      note_residency_locked();
    }
  }
  return future.get();  // rethrows a failed build for every waiter
}

void WorldCache::evict_over_budget_locked(std::uint64_t protect) {
  if (options_.max_bytes == 0) return;
  while (resident_bytes_ > options_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.built || it->first == protect) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // only in-flight/protected left
    resident_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
    if (evictions_ != nullptr) evictions_->add();
  }
}

WorldCache::Stats WorldCache::stats() const {
  MutexLock lock(mutex_);
  Stats snapshot = stats_;
  snapshot.resident_bytes = resident_bytes_;
  snapshot.resident_worlds = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (entry.built) ++snapshot.resident_worlds;
  }
  return snapshot;
}

std::size_t WorldCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void WorldCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  resident_bytes_ = 0;
  note_residency_locked();
}

}  // namespace neutral::batch
