#include "batch/world_cache.h"

namespace neutral::batch {

std::shared_ptr<const World> WorldCache::acquire(const ProblemDeck& deck,
                                                 bool* hit) {
  return acquire(deck, world_fingerprint(deck), hit);
}

std::shared_ptr<const World> WorldCache::acquire(const ProblemDeck& deck,
                                                 std::uint64_t fingerprint,
                                                 bool* hit) {
  const std::uint64_t key = fingerprint;

  Future future;
  std::promise<std::shared_ptr<const World>> promise;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      future = it->second;
    } else {
      ++stats_.misses;
      builder = true;
      future = promise.get_future().share();
      entries_.emplace(key, future);
    }
  }
  if (hit != nullptr) *hit = !builder;

  if (builder) {
    try {
      promise.set_value(build_world(deck));
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(key);
      ++stats_.evictions;
    }
  }
  return future.get();  // rethrows a failed build for every waiter
}

WorldCache::Stats WorldCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t WorldCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void WorldCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace neutral::batch
