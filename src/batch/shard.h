// Single-deck sharding: fork–join bank decomposition over the batch engine.
//
// One large deck cannot keep a node busy — the paper's load-imbalance
// result caps Over Particles scaling well below the core count — but its
// particle bank *can* be split: the counter-based RNG is keyed by stable
// particle ids, so a Simulation restricted to a contiguous id span
// (core/simulation.h: ParticleSpan) replays exactly the histories those
// ids have in the unsharded run.  N disjoint spans are therefore N
// independent batch jobs that share one cached World, run on the worker
// pool in any order, and reduce to the unsharded answer.
//
// Determinism: integer outputs (event counters, population) reduce
// exactly.  The tally reduces bit-identically because shard jobs run with
// compensated tallies (core/tally.h): each cell's (sum, comp) pair carries
// its deposits to ~2x working precision, so folding shard pairs — in id
// order here, though the double-double fold makes even that immaterial —
// rounds each cell once.  The merged checksum is invariant to shard count,
// worker count, and completion order.
//
// Failure: shard jobs share a Job::group, so the engine cancels pending
// siblings as soon as one shard fails (batch/queue.h) — a lost shard means
// a lost fork-join result, and finishing the rest would waste the pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/engine.h"
#include "batch/job.h"
#include "core/simulation.h"

namespace neutral::batch {

/// Split ids [0, n_particles) into `shards` contiguous spans.  Sizes
/// differ by at most one (the remainder goes to the leading shards), the
/// spans are in id order, and their union is exactly the bank.  `shards`
/// is clamped to n_particles so no span is empty.
std::vector<ParticleSpan> plan_shards(std::int64_t n_particles,
                                      std::int32_t shards);

struct ShardOptions {
  /// Number of shard jobs to split the deck into (>= 1).
  std::int32_t shards = 1;
  /// OpenMP threads per shard job; 0 = the engine's per-job budget.
  /// Any value preserves bit-identical reduction (compensated tallies are
  /// thread-count invariant); 1 maximises across-shard concurrency.
  std::int32_t threads_per_shard = 1;
  /// Queue priority stamped on every shard job.
  std::int32_t priority = 0;
  /// Fork-join group id (must be non-zero and unique within a submission
  /// when several sharded decks share one engine run).
  std::uint64_t group = 1;
};

/// Expand `base` into shard jobs with ids first_job_id .. +shards-1 and a
/// shared precomputed world fingerprint.  The jobs force compensated
/// tallies and tally-image capture; a base tally_mode of kAtomic is
/// promoted to kPrivatized when a shard may run more than one thread
/// (compensated atomic updates are single-thread only).  `base.span` must
/// cover the whole bank — sharding a shard is not supported.
std::vector<Job> make_shard_jobs(const SimulationConfig& base,
                                 const ShardOptions& opt,
                                 std::uint64_t first_job_id = 0,
                                 const std::string& label_prefix = "");

/// Deterministic ordered reduction: fold shard results (given in shard
/// order, each carrying a tally image) into one RunResult.  Counters,
/// budget, population and per-step data merge as sums; the tally is folded
/// through a compensated EnergyTally (EnergyTally::accumulate) and the
/// checksum, tally total and merged image are recomputed from it.
RunResult reduce_shards(const std::vector<const RunResult*>& shard_results);

/// One fork-join group's reduced outcome plus its timing summary.
struct GroupReduction {
  bool ok = false;
  std::string error;           ///< root-cause shard failure when !ok
  bool timed_out = false;      ///< root cause hit a QueuePolicy deadline
  RunResult merged;            ///< valid only when ok
  double max_shard_seconds = 0.0;
  double mean_shard_seconds = 0.0;

  [[nodiscard]] double imbalance() const {
    return mean_shard_seconds > 0.0 ? max_shard_seconds / mean_shard_seconds
                                    : 0.0;
  }
};

/// Gather + reduce `count` consecutive shard outcomes (one group, in shard
/// order).  On any failure, reports the root cause — a failed shard, not a
/// cancelled sibling that happens to sit earlier.  Shared by run_sharded
/// and multi-group callers like `neutral_batch --shards`.
GroupReduction reduce_outcome_group(const JobOutcome* outcomes,
                                    std::size_t count);

/// Fork–join outcome of one sharded deck.
struct ShardedRunReport {
  bool ok = false;
  std::string error;             ///< first shard failure when !ok
  RunResult merged;              ///< valid only when ok
  std::vector<ParticleSpan> spans;
  BatchReport batch;             ///< per-shard timing lives in batch.jobs
  double wall_seconds = 0.0;     ///< fork-join wall clock

  /// Longest / mean shard solve time — the §VII load-imbalance figure
  /// sharding exists to beat (1.0 = perfectly balanced).
  [[nodiscard]] double imbalance() const;
};

/// Split one deck into opt.shards jobs, run them on `engine`, and reduce.
/// The merged tally checksum and population are bit-identical to the
/// unsharded compensated run for any shard count and any worker count.
ShardedRunReport run_sharded(BatchEngine& engine, const SimulationConfig& base,
                             const ShardOptions& opt = {},
                             const BatchEngine::CompletionCallback&
                                 on_complete = {});

}  // namespace neutral::batch
