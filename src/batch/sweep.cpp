#include "batch/sweep.h"

#include <fstream>
#include <sstream>

#include "io/deck_io.h"
#include "rng/stream.h"
#include "util/error.h"

namespace neutral::batch {

namespace {

std::size_t axis_extent(std::size_t n) { return n > 0 ? n : 1; }

[[noreturn]] void sweep_error(int line, const std::string& msg) {
  throw Error("sweep parse error at line " + std::to_string(line) + ": " +
              msg);
}

double parse_number(const std::string& token, int line) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    sweep_error(line, "expected a number, got '" + token + "'");
  }
  return v;
}

std::int64_t parse_int(const std::string& token, int line) {
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    sweep_error(line, "expected an integer, got '" + token + "'");
  }
  return v;
}

std::uint64_t parse_uint(const std::string& token, int line) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    sweep_error(line, "expected an unsigned integer, got '" + token + "'");
  }
  return v;
}

}  // namespace

std::size_t sweep_size(const SweepSpec& spec) {
  const SweepAxes& a = spec.axes;
  NEUTRAL_REQUIRE(a.mesh_scales.empty() || a.nx.empty(),
                  "mesh_scale and nx axes are mutually exclusive");
  const std::size_t sizes =
      axis_extent(a.mesh_scales.empty() ? a.nx.size() : a.mesh_scales.size());
  return sizes * axis_extent(a.particles.size()) *
         axis_extent(a.schemes.size()) * axis_extent(a.layouts.size()) *
         axis_extent(a.schedules.size()) * axis_extent(a.seeds.size());
}

std::vector<Job> expand_sweep(const SweepSpec& spec) {
  const SweepAxes& a = spec.axes;
  std::vector<Job> jobs;
  jobs.reserve(sweep_size(spec));  // also validates axis exclusivity

  const std::size_t n_size =
      axis_extent(a.mesh_scales.empty() ? a.nx.size() : a.mesh_scales.size());
  std::uint64_t id = 0;
  for (std::size_t i_size = 0; i_size < n_size; ++i_size) {
    // Regenerating a named deck per mesh scale keeps the paper's invariant
    // that density scales with resolution (constant cells per mean free
    // path); a raw nx override leaves the density field alone.
    SimulationConfig size_base = spec.base;
    if (!a.mesh_scales.empty()) {
      NEUTRAL_REQUIRE(!spec.deck_name.empty(),
                      "axis mesh_scale requires a named base deck");
      ProblemDeck scaled = deck_by_name(spec.deck_name, a.mesh_scales[i_size],
                                        spec.particle_scale);
      scaled.n_timesteps = spec.base.deck.n_timesteps;
      scaled.seed = spec.base.deck.seed;
      size_base.deck = std::move(scaled);
    } else if (!a.nx.empty()) {
      size_base.deck.nx = a.nx[i_size];
      size_base.deck.ny = a.nx[i_size];
    }

    for (std::size_t i_n = 0; i_n < axis_extent(a.particles.size()); ++i_n) {
      for (std::size_t i_sc = 0; i_sc < axis_extent(a.schemes.size());
           ++i_sc) {
        for (std::size_t i_l = 0; i_l < axis_extent(a.layouts.size());
             ++i_l) {
          for (std::size_t i_sd = 0; i_sd < axis_extent(a.schedules.size());
               ++i_sd) {
            for (std::size_t i_seed = 0;
                 i_seed < axis_extent(a.seeds.size()); ++i_seed) {
              SimulationConfig cfg = size_base;
              if (!a.particles.empty()) cfg.deck.n_particles = a.particles[i_n];
              if (!a.schemes.empty()) cfg.scheme = a.schemes[i_sc];
              if (!a.layouts.empty()) cfg.layout = a.layouts[i_l];
              if (!a.schedules.empty()) cfg.schedule = a.schedules[i_sd];
              if (!a.seeds.empty()) {
                cfg.deck.seed = a.seeds[i_seed];
              } else if (spec.batch_seed != 0) {
                cfg.deck.seed =
                    rng::derive_stream_seed(spec.batch_seed, id);
              }
              // §VI-G: Over Events hoists atomics into the separate tally
              // loop; mirror the driver binary's defaulting — but only
              // when the spec did not name a tally mode.  A named mode is
              // an explicit experimental choice and is never rewritten.
              if (!spec.tally_mode_named &&
                  cfg.scheme == Scheme::kOverEvents &&
                  cfg.tally_mode == TallyMode::kAtomic) {
                cfg.tally_mode = TallyMode::kDeferredAtomic;
              }
              jobs.push_back(make_job(id, std::move(cfg), spec.priority));
              ++id;
            }
          }
        }
      }
    }
  }
  return jobs;
}

SweepSpec parse_sweep(const std::string& text) {
  SweepSpec spec;
  std::string deck_file;
  double mesh_scale = 0.08;
  double particle_scale = 0.02;
  std::int64_t timesteps = 0;
  std::int64_t particles = 0;
  bool have_seed = false;
  std::uint64_t seed = 0;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;

    std::vector<std::string> args;
    std::string tok;
    while (ls >> tok) args.push_back(tok);
    auto need = [&](std::size_t n) {
      if (args.size() != n) {
        sweep_error(line_no, "key '" + key + "' expects " +
                                 std::to_string(n) + " argument(s), got " +
                                 std::to_string(args.size()));
      }
    };
    auto need_at_least = [&](std::size_t n) {
      if (args.size() < n) {
        sweep_error(line_no, "key '" + key + "' expects at least " +
                                 std::to_string(n) + " argument(s)");
      }
    };

    if (key == "deck") {
      need(1);
      spec.deck_name = args[0];
    } else if (key == "deck_file") {
      need(1);
      deck_file = args[0];
    } else if (key == "mesh_scale") {
      need(1);
      mesh_scale = parse_number(args[0], line_no);
    } else if (key == "particle_scale") {
      need(1);
      particle_scale = parse_number(args[0], line_no);
    } else if (key == "scheme") {
      need(1);
      spec.base.scheme = scheme_from_string(args[0]);
    } else if (key == "layout") {
      need(1);
      spec.base.layout = layout_from_string(args[0]);
    } else if (key == "tally") {
      need(1);
      spec.base.tally_mode = tally_mode_from_string(args[0]);
      spec.tally_mode_named = true;
    } else if (key == "lookup") {
      need(1);
      spec.base.lookup = lookup_from_string(args[0]);
    } else if (key == "schedule") {
      need(1);
      spec.base.schedule = schedule_from_string(args[0]);
    } else if (key == "threads") {
      need(1);
      spec.base.threads =
          static_cast<std::int32_t>(parse_int(args[0], line_no));
    } else if (key == "rng_batch") {
      need(1);
      spec.base.rng_batch = parse_int(args[0], line_no) != 0;
    } else if (key == "branchless_events") {
      need(1);
      spec.base.branchless_events = parse_int(args[0], line_no) != 0;
    } else if (key == "sort_events") {
      need(1);
      spec.base.over_events.sort_events = parse_int(args[0], line_no) != 0;
    } else if (key == "tally_direct") {
      need(1);
      spec.base.tally_direct = parse_int(args[0], line_no) != 0;
    } else if (key == "fuse_rounds") {
      need(1);
      spec.base.over_events.fuse_rounds = parse_int(args[0], line_no) != 0;
    } else if (key == "pipeline_histories") {
      need(1);
      const std::int64_t k = parse_int(args[0], line_no);
      if (k < 1) {
        throw Error("sweep line " + std::to_string(line_no) +
                    ": pipeline_histories must be >= 1");
      }
      spec.base.pipeline_histories = static_cast<std::int32_t>(k);
    } else if (key == "timesteps") {
      need(1);
      timesteps = parse_int(args[0], line_no);
    } else if (key == "particles") {
      need(1);
      particles = parse_int(args[0], line_no);
    } else if (key == "seed") {
      need(1);
      seed = parse_uint(args[0], line_no);
      have_seed = true;
    } else if (key == "batch_seed") {
      need(1);
      spec.batch_seed = parse_uint(args[0], line_no);
    } else if (key == "priority") {
      need(1);
      spec.priority = static_cast<std::int32_t>(parse_int(args[0], line_no));
    } else if (key == "axis") {
      need_at_least(2);
      const std::string& axis = args[0];
      for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string& v = args[i];
        if (axis == "particles") {
          spec.axes.particles.push_back(parse_int(v, line_no));
        } else if (axis == "mesh_scale") {
          spec.axes.mesh_scales.push_back(parse_number(v, line_no));
        } else if (axis == "nx") {
          spec.axes.nx.push_back(
              static_cast<std::int32_t>(parse_int(v, line_no)));
        } else if (axis == "scheme") {
          spec.axes.schemes.push_back(scheme_from_string(v));
        } else if (axis == "layout") {
          spec.axes.layouts.push_back(layout_from_string(v));
        } else if (axis == "schedule") {
          spec.axes.schedules.push_back(schedule_from_string(v));
        } else if (axis == "seed") {
          spec.axes.seeds.push_back(parse_uint(v, line_no));
        } else {
          sweep_error(line_no, "unknown axis '" + axis + "'");
        }
      }
    } else {
      sweep_error(line_no, "unknown key '" + key + "'");
    }
  }

  NEUTRAL_REQUIRE(spec.deck_name.empty() || deck_file.empty(),
                  "sweep spec: 'deck' and 'deck_file' are mutually exclusive");
  if (!deck_file.empty()) {
    spec.base.deck = load_deck(deck_file);
  } else {
    const std::string name = spec.deck_name.empty() ? "csp" : spec.deck_name;
    spec.base.deck = deck_by_name(name, mesh_scale, particle_scale);
    spec.deck_name = name;
  }
  spec.particle_scale = particle_scale;
  if (timesteps > 0) {
    spec.base.deck.n_timesteps = static_cast<std::int32_t>(timesteps);
  }
  if (particles > 0) spec.base.deck.n_particles = particles;
  if (have_seed) spec.base.deck.seed = seed;
  return spec;
}

SweepSpec load_sweep(const std::string& path) {
  std::ifstream in(path);
  NEUTRAL_REQUIRE(in.good(), "cannot open sweep spec '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_sweep(text.str());
}

}  // namespace neutral::batch
