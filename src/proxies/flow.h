// `flow` comparison proxy: explicit compressible hydrodynamics.
//
// The paper contrasts neutral's scaling against the arch-suite `flow`
// mini-app, a "highly optimised hydrodynamics application" whose parallel
// efficiency is limited by memory bandwidth (§VI-B, Fig 3) and which gains
// nothing from hyperthreading (§VI-E).  This proxy reproduces that
// performance profile with a 2D Lax–Friedrichs solver for the Euler
// equations: per cell-update work is a handful of FLOPs against four
// streamed conserved-variable fields — a textbook bandwidth-bound stencil.
#pragma once

#include <cstdint>

#include "util/aligned.h"

namespace neutral {

struct FlowConfig {
  std::int32_t nx = 512;
  std::int32_t ny = 512;
  double gamma = 1.4;   ///< ideal-gas ratio of specific heats
  double cfl = 0.4;
};

/// 2D Euler solver on a periodic domain, Lax–Friedrichs fluxes.
class FlowSolver {
 public:
  explicit FlowSolver(FlowConfig cfg);

  /// Initialise a Gaussian density/pressure pulse at the domain centre.
  void initialise_pulse();

  /// Advance `steps` timesteps; returns wall seconds of the solve loop.
  double run(std::int32_t steps);

  /// Total mass — conserved exactly by the scheme (up to FP reassociation).
  [[nodiscard]] double total_mass() const;
  /// Total energy — also conserved on the periodic domain.
  [[nodiscard]] double total_energy() const;

  [[nodiscard]] const FlowConfig& config() const { return cfg_; }
  [[nodiscard]] std::int64_t cells() const {
    return static_cast<std::int64_t>(cfg_.nx) * cfg_.ny;
  }
  /// Bytes streamed per timestep (for achieved-bandwidth estimates).
  [[nodiscard]] double bytes_per_step() const;

 private:
  void timestep(double dt);
  [[nodiscard]] double stable_dt() const;

  FlowConfig cfg_;
  // Conserved variables: density, x/y momentum, total energy (+ scratch).
  aligned_vector<double> rho_, mx_, my_, e_;
  aligned_vector<double> rho_n_, mx_n_, my_n_, e_n_;
};

}  // namespace neutral
