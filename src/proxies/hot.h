// `hot` comparison proxy: conjugate-gradient heat conduction.
//
// The arch-suite `hot` mini-app is "a conjugate gradient based heat
// conduction linear solver" (§VI-B).  Each CG iteration is one 5-point
// stencil apply, two dot products and three axpy sweeps over mesh-sized
// vectors: memory-bandwidth bound with a couple of reductions per
// iteration, giving the second scaling-contrast point in Fig 3.
#pragma once

#include <cstdint>

#include "util/aligned.h"

namespace neutral {

struct HotConfig {
  std::int32_t nx = 512;
  std::int32_t ny = 512;
  double conductivity = 0.1;  ///< kappa * dt / dx^2 (implicit step weight)
  double tolerance = 1.0e-10; ///< relative residual target
  std::int32_t max_iterations = 5000;
};

struct HotResult {
  std::int32_t iterations = 0;
  double relative_residual = 0.0;
  double seconds = 0.0;
  bool converged = false;
};

/// Solve one backward-Euler heat-conduction step (I - k Lap) x = b with CG.
class HotSolver {
 public:
  explicit HotSolver(HotConfig cfg);

  /// Set b to a hot square in the domain centre on a cold background.
  void initialise_hot_square();

  /// Arbitrary right-hand side (used by the manufactured-solution tests).
  void set_rhs(const aligned_vector<double>& b);

  /// Run CG from x=0; returns convergence info.
  HotResult solve();

  [[nodiscard]] const aligned_vector<double>& solution() const { return x_; }
  [[nodiscard]] std::int64_t cells() const {
    return static_cast<std::int64_t>(cfg_.nx) * cfg_.ny;
  }

  /// y = (I - k Lap) x with zero-Neumann boundaries (exposed for tests).
  void apply_operator(const aligned_vector<double>& x,
                      aligned_vector<double>& y) const;

 private:
  HotConfig cfg_;
  aligned_vector<double> b_, x_, r_, p_, ap_;
};

}  // namespace neutral
