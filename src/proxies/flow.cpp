#include "proxies/flow.h"

#include <cmath>

#include "runtime/timer.h"
#include "util/error.h"
#include "util/numeric.h"

namespace neutral {
namespace {
// Periodic index helpers.
inline std::int32_t wrap(std::int32_t i, std::int32_t n) {
  return i < 0 ? i + n : (i >= n ? i - n : i);
}
}  // namespace

FlowSolver::FlowSolver(FlowConfig cfg) : cfg_(cfg) {
  NEUTRAL_REQUIRE(cfg_.nx >= 4 && cfg_.ny >= 4, "flow mesh too small");
  NEUTRAL_REQUIRE(cfg_.gamma > 1.0, "gamma must exceed 1");
  const auto n = static_cast<std::size_t>(cells());
  rho_.assign(n, 1.0);
  mx_.assign(n, 0.0);
  my_.assign(n, 0.0);
  e_.assign(n, 1.0);
  rho_n_ = rho_; mx_n_ = mx_; my_n_ = my_; e_n_ = e_;
}

void FlowSolver::initialise_pulse() {
  const double cx = 0.5 * cfg_.nx;
  const double cy = 0.5 * cfg_.ny;
  const double radius = 0.12 * std::min(cfg_.nx, cfg_.ny);
#pragma omp parallel for schedule(static)
  for (std::int32_t j = 0; j < cfg_.ny; ++j) {
    for (std::int32_t i = 0; i < cfg_.nx; ++i) {
      const double r2 = (sqr(i - cx) + sqr(j - cy)) / sqr(radius);
      const auto c = static_cast<std::size_t>(j) * cfg_.nx + i;
      rho_[c] = 1.0 + 2.0 * std::exp(-r2);
      mx_[c] = 0.0;
      my_[c] = 0.0;
      // Pressurised centre: E = p/(gamma-1) with zero velocity.
      e_[c] = (1.0 + 4.0 * std::exp(-r2)) / (cfg_.gamma - 1.0);
    }
  }
}

double FlowSolver::stable_dt() const {
  // Global max wave speed; dx = 1 by construction.
  double max_speed = 1.0e-12;
#pragma omp parallel for schedule(static) reduction(max : max_speed)
  for (std::int64_t c = 0; c < cells(); ++c) {
    const auto u = static_cast<std::size_t>(c);
    const double inv_rho = 1.0 / rho_[u];
    const double vx = mx_[u] * inv_rho;
    const double vy = my_[u] * inv_rho;
    const double kinetic = 0.5 * rho_[u] * (vx * vx + vy * vy);
    const double p = (cfg_.gamma - 1.0) * std::fmax(1.0e-12, e_[u] - kinetic);
    const double cs = std::sqrt(cfg_.gamma * p * inv_rho);
    const double speed = std::fmax(std::fabs(vx), std::fabs(vy)) + cs;
    max_speed = std::fmax(max_speed, speed);
  }
  return cfg_.cfl / max_speed;
}

void FlowSolver::timestep(double dt) {
  const std::int32_t nx = cfg_.nx;
  const std::int32_t ny = cfg_.ny;
  const double gamma = cfg_.gamma;
  const double lambda = dt;  // dx == 1

  // One fused Lax–Friedrichs update: U_i^{n+1} = avg(neighbours)/... —
  // streams 4 fields in (5-point) and 4 out: bandwidth bound by design.
#pragma omp parallel for schedule(static)
  for (std::int32_t j = 0; j < ny; ++j) {
    for (std::int32_t i = 0; i < nx; ++i) {
      auto idx = [&](std::int32_t ii, std::int32_t jj) {
        return static_cast<std::size_t>(wrap(jj, ny)) * nx + wrap(ii, nx);
      };
      auto flux = [&](std::size_t c, int axis, double f[4]) {
        const double inv_rho = 1.0 / rho_[c];
        const double vx = mx_[c] * inv_rho;
        const double vy = my_[c] * inv_rho;
        const double kinetic = 0.5 * rho_[c] * (vx * vx + vy * vy);
        const double p = (gamma - 1.0) * std::fmax(1.0e-12, e_[c] - kinetic);
        const double vn = axis == 0 ? vx : vy;
        f[0] = rho_[c] * vn;
        f[1] = mx_[c] * vn + (axis == 0 ? p : 0.0);
        f[2] = my_[c] * vn + (axis == 1 ? p : 0.0);
        f[3] = (e_[c] + p) * vn;
      };

      const std::size_t c = idx(i, j);
      const std::size_t xl = idx(i - 1, j), xr = idx(i + 1, j);
      const std::size_t yl = idx(i, j - 1), yr = idx(i, j + 1);

      double fxl[4], fxr[4], fyl[4], fyr[4];
      flux(xl, 0, fxl); flux(xr, 0, fxr);
      flux(yl, 1, fyl); flux(yr, 1, fyr);

      const double u_avg[4] = {
          0.25 * (rho_[xl] + rho_[xr] + rho_[yl] + rho_[yr]),
          0.25 * (mx_[xl] + mx_[xr] + mx_[yl] + mx_[yr]),
          0.25 * (my_[xl] + my_[xr] + my_[yl] + my_[yr]),
          0.25 * (e_[xl] + e_[xr] + e_[yl] + e_[yr])};

      rho_n_[c] = u_avg[0] - 0.5 * lambda * (fxr[0] - fxl[0] + fyr[0] - fyl[0]);
      mx_n_[c] = u_avg[1] - 0.5 * lambda * (fxr[1] - fxl[1] + fyr[1] - fyl[1]);
      my_n_[c] = u_avg[2] - 0.5 * lambda * (fxr[2] - fxl[2] + fyr[2] - fyl[2]);
      e_n_[c] = u_avg[3] - 0.5 * lambda * (fxr[3] - fxl[3] + fyr[3] - fyl[3]);
    }
  }
  rho_.swap(rho_n_);
  mx_.swap(mx_n_);
  my_.swap(my_n_);
  e_.swap(e_n_);
}

double FlowSolver::run(std::int32_t steps) {
  WallTimer timer;
  for (std::int32_t s = 0; s < steps; ++s) timestep(stable_dt());
  return timer.seconds();
}

double FlowSolver::total_mass() const {
  KahanSum sum;
  for (double v : rho_) sum.add(v);
  return sum.value();
}

double FlowSolver::total_energy() const {
  KahanSum sum;
  for (double v : e_) sum.add(v);
  return sum.value();
}

double FlowSolver::bytes_per_step() const {
  // 4 fields read over a 5-point stencil (cached: ~1 read each) + 4 written.
  return static_cast<double>(cells()) * (4 + 4) * sizeof(double);
}

}  // namespace neutral
