#include "proxies/hot.h"

#include <cmath>

#include "runtime/timer.h"
#include "util/error.h"

namespace neutral {

HotSolver::HotSolver(HotConfig cfg) : cfg_(cfg) {
  NEUTRAL_REQUIRE(cfg_.nx >= 3 && cfg_.ny >= 3, "hot mesh too small");
  NEUTRAL_REQUIRE(cfg_.conductivity > 0.0, "conductivity must be positive");
  const auto n = static_cast<std::size_t>(cells());
  b_.assign(n, 0.0);
  x_.assign(n, 0.0);
  r_.assign(n, 0.0);
  p_.assign(n, 0.0);
  ap_.assign(n, 0.0);
}

void HotSolver::initialise_hot_square() {
  const std::int32_t x0 = cfg_.nx / 3, x1 = 2 * cfg_.nx / 3;
  const std::int32_t y0 = cfg_.ny / 3, y1 = 2 * cfg_.ny / 3;
#pragma omp parallel for schedule(static)
  for (std::int32_t j = 0; j < cfg_.ny; ++j) {
    for (std::int32_t i = 0; i < cfg_.nx; ++i) {
      const bool hot = i >= x0 && i < x1 && j >= y0 && j < y1;
      b_[static_cast<std::size_t>(j) * cfg_.nx + i] = hot ? 100.0 : 1.0;
    }
  }
}

void HotSolver::set_rhs(const aligned_vector<double>& b) {
  NEUTRAL_REQUIRE(static_cast<std::int64_t>(b.size()) == cells(),
                  "rhs size must match the mesh");
  b_ = b;
}

void HotSolver::apply_operator(const aligned_vector<double>& x,
                               aligned_vector<double>& y) const {
  const std::int32_t nx = cfg_.nx;
  const std::int32_t ny = cfg_.ny;
  const double k = cfg_.conductivity;
#pragma omp parallel for schedule(static)
  for (std::int32_t j = 0; j < ny; ++j) {
    for (std::int32_t i = 0; i < nx; ++i) {
      const auto c = static_cast<std::size_t>(j) * nx + i;
      // Zero-flux (Neumann) boundaries: mirror the missing neighbour.
      const double xc = x[c];
      const double xl = i > 0 ? x[c - 1] : xc;
      const double xr = i < nx - 1 ? x[c + 1] : xc;
      const double yd = j > 0 ? x[c - nx] : xc;
      const double yu = j < ny - 1 ? x[c + nx] : xc;
      y[c] = xc - k * (xl + xr + yd + yu - 4.0 * xc);
    }
  }
}

namespace {

double dot(const aligned_vector<double>& a, const aligned_vector<double>& b) {
  double sum = 0.0;
  const auto n = static_cast<std::int64_t>(a.size());
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (std::int64_t i = 0; i < n; ++i) {
    sum += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  }
  return sum;
}

void axpy(double alpha, const aligned_vector<double>& x,
          aligned_vector<double>& y) {
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] += alpha * x[static_cast<std::size_t>(i)];
  }
}

void xpay(const aligned_vector<double>& x, double beta,
          aligned_vector<double>& y) {
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(i)] + beta * y[static_cast<std::size_t>(i)];
  }
}

}  // namespace

HotResult HotSolver::solve() {
  HotResult result;
  WallTimer timer;

  std::fill(x_.begin(), x_.end(), 0.0);
  r_ = b_;  // r = b - A*0
  p_ = r_;
  double rr = dot(r_, r_);
  const double b_norm = std::sqrt(dot(b_, b_));
  if (b_norm == 0.0) {
    result.converged = true;
    result.seconds = timer.seconds();
    return result;
  }

  for (std::int32_t it = 0; it < cfg_.max_iterations; ++it) {
    apply_operator(p_, ap_);
    const double alpha = rr / dot(p_, ap_);
    axpy(alpha, p_, x_);
    axpy(-alpha, ap_, r_);
    const double rr_new = dot(r_, r_);
    result.iterations = it + 1;
    result.relative_residual = std::sqrt(rr_new) / b_norm;
    if (result.relative_residual < cfg_.tolerance) {
      result.converged = true;
      break;
    }
    xpay(r_, rr_new / rr, p_);
    rr = rr_new;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace neutral
