#include "io/results_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace neutral {

ExpectedResults make_expected(const SimulationConfig& config,
                              const RunResult& result) {
  ExpectedResults e;
  e.problem = config.deck.name;
  e.particles = config.deck.n_particles;
  e.timesteps = config.deck.n_timesteps;
  e.seed = config.deck.seed;
  e.tally_total = result.budget.tally_total;
  e.tally_checksum = result.tally_checksum;
  e.facets = result.counters.facets;
  e.collisions = result.counters.collisions;
  e.censuses = result.counters.censuses;
  return e;
}

std::string format_results(const ExpectedResults& e) {
  std::ostringstream out;
  out.precision(17);
  out << "# neutral-mc expected results\n";
  out << "problem " << e.problem << '\n';
  out << "particles " << e.particles << '\n';
  out << "timesteps " << e.timesteps << '\n';
  out << "seed " << e.seed << '\n';
  out << "tally_total " << e.tally_total << '\n';
  out << "tally_checksum " << e.tally_checksum << '\n';
  out << "facets " << e.facets << '\n';
  out << "collisions " << e.collisions << '\n';
  out << "censuses " << e.censuses << '\n';
  return out.str();
}

ExpectedResults parse_results(const std::string& text) {
  ExpectedResults e;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool have_tally = false;
  while (std::getline(in, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    std::string value;
    NEUTRAL_REQUIRE(static_cast<bool>(ls >> value),
                    "results line " + std::to_string(line_no) +
                        ": key '" + key + "' has no value");
    try {
      if (key == "problem") {
        e.problem = value;
      } else if (key == "particles") {
        e.particles = std::stoll(value);
      } else if (key == "timesteps") {
        e.timesteps = std::stoi(value);
      } else if (key == "seed") {
        e.seed = std::stoull(value);
      } else if (key == "tally_total") {
        e.tally_total = std::stod(value);
        have_tally = true;
      } else if (key == "tally_checksum") {
        e.tally_checksum = std::stod(value);
      } else if (key == "facets") {
        e.facets = std::stoull(value);
      } else if (key == "collisions") {
        e.collisions = std::stoull(value);
      } else if (key == "censuses") {
        e.censuses = std::stoull(value);
      } else {
        throw Error("results line " + std::to_string(line_no) +
                    ": unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw Error("results line " + std::to_string(line_no) +
                  ": malformed value '" + value + "'");
    }
  }
  NEUTRAL_REQUIRE(have_tally, "results file missing tally_total");
  return e;
}

void save_results(const ExpectedResults& expected, const std::string& path) {
  std::ofstream out(path);
  NEUTRAL_REQUIRE(out.good(), "cannot open results output " + path);
  out << format_results(expected);
}

ExpectedResults load_results(const std::string& path) {
  std::ifstream in(path);
  NEUTRAL_REQUIRE(in.good(), "cannot open results file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_results(text.str());
}

namespace {

bool close(double a, double b, double rel) {
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= rel * scale + 1e-300;
}

}  // namespace

ResultsCheck verify_results(const ExpectedResults& expected,
                            const SimulationConfig& config,
                            const RunResult& result, double rel_tol) {
  ResultsCheck check;
  std::ostringstream detail;
  auto mismatch = [&](const std::string& what) {
    if (detail.tellp() > 0) detail << "; ";
    detail << what;
  };

  if (config.deck.name != expected.problem) mismatch("problem name differs");
  if (config.deck.n_particles != expected.particles) {
    mismatch("particle count differs");
  }
  if (config.deck.n_timesteps != expected.timesteps) {
    mismatch("timestep count differs");
  }
  if (config.deck.seed != expected.seed) mismatch("seed differs");
  if (result.counters.facets != expected.facets) {
    mismatch("facet count " + std::to_string(result.counters.facets) +
             " != " + std::to_string(expected.facets));
  }
  if (result.counters.collisions != expected.collisions) {
    mismatch("collision count " + std::to_string(result.counters.collisions) +
             " != " + std::to_string(expected.collisions));
  }
  if (result.counters.censuses != expected.censuses) {
    mismatch("census count differs");
  }
  if (!close(result.budget.tally_total, expected.tally_total, rel_tol)) {
    detail.precision(17);
    mismatch("tally total differs");
  }
  if (!close(result.tally_checksum, expected.tally_checksum, rel_tol)) {
    mismatch("tally checksum differs (deposits moved between cells)");
  }

  check.detail = detail.str();
  check.passed = check.detail.empty();
  return check;
}

}  // namespace neutral
