// Expected-results files: the mini-app regression workflow.
//
// The original mini-app validates runs against `.results` files holding the
// expected tally checksum per problem.  This module provides the same
// workflow: record a run's invariant outputs (tally total + positional
// checksum + event counts) and later verify a fresh run against them —
// catching physics regressions that unit tests on components would miss.
//
// Format (text, one `key value` per line):
//
//   problem <name>
//   particles <n>
//   timesteps <n>
//   seed <n>
//   tally_total <float>
//   tally_checksum <float>
//   facets <n>
//   collisions <n>
//   censuses <n>
//
// Floating-point comparisons use a relative tolerance: tallies reorder
// across thread counts, so bitwise equality only holds single-threaded.
#pragma once

#include <cstdint>
#include <string>

#include "core/simulation.h"

namespace neutral {

/// The run outputs a regression record pins down.
struct ExpectedResults {
  std::string problem = "custom";
  std::int64_t particles = 0;
  std::int32_t timesteps = 0;
  std::uint64_t seed = 0;
  double tally_total = 0.0;
  double tally_checksum = 0.0;
  std::uint64_t facets = 0;
  std::uint64_t collisions = 0;
  std::uint64_t censuses = 0;
};

/// Snapshot a finished run.
ExpectedResults make_expected(const SimulationConfig& config,
                              const RunResult& result);

/// Serialise / parse the text format (round-trips exactly).
std::string format_results(const ExpectedResults& expected);
ExpectedResults parse_results(const std::string& text);

/// File I/O.
void save_results(const ExpectedResults& expected, const std::string& path);
ExpectedResults load_results(const std::string& path);

/// Outcome of a verification.
struct ResultsCheck {
  bool passed = false;
  std::string detail;  ///< human-readable mismatch description (empty if ok)
};

/// Compare a fresh run against a record.  Event counts must match exactly
/// (they are integers and scheme-invariant); tallies compare to `rel_tol`.
ResultsCheck verify_results(const ExpectedResults& expected,
                            const SimulationConfig& config,
                            const RunResult& result, double rel_tol = 1e-9);

}  // namespace neutral
