// Text problem-deck reader/writer.
//
// The original mini-app configures problems through `.params` text files;
// this module provides the same workflow.  Format: one `key value...` pair
// per line, `#` comments, keys:
//
//   name <string>                 problem label
//   nx/ny <int>                   mesh cells per axis
//   width/height <cm>             physical extents
//   density <kg/m^3>              background density
//   region <x0 y0 x1 y1 kg/m^3>   density override rectangle (repeatable)
//   source <x0 y0 x1 y1>          particle birth rectangle
//   energy <eV>                   initial particle energy
//   particles <int>               bank size
//   dt <s>                        timestep length
//   timesteps <int>               number of timesteps
//   seed <int>                    master RNG seed
//   molar_mass <g/mol>            dummy-material molar mass
//   mass_number <A>               scattering-kinematics mass number
//   min_energy <eV>               energy cutoff
//   min_weight <w>                weight cutoff
//   xs_points <int>               cross-section table entries
#pragma once

#include <string>

#include "core/deck.h"

namespace neutral {

/// Parse deck text; throws neutral::Error with a line number on mistakes.
ProblemDeck parse_deck(const std::string& text);

/// Load a deck file from disk.
ProblemDeck load_deck(const std::string& path);

/// Serialise a deck into the text format (round-trips through parse_deck).
std::string format_deck(const ProblemDeck& deck);

/// Write a deck file to disk.
void save_deck(const ProblemDeck& deck, const std::string& path);

}  // namespace neutral
