#include "io/deck_io.h"

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace neutral {
namespace {

[[noreturn]] void deck_error(int line, const std::string& msg) {
  throw Error("deck parse error at line " + std::to_string(line) + ": " + msg);
}

double parse_number(const std::string& token, int line) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    deck_error(line, "expected a number, got '" + token + "'");
  }
  return v;
}

std::int64_t parse_int(const std::string& token, int line) {
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    deck_error(line, "expected an integer, got '" + token + "'");
  }
  return v;
}

}  // namespace

ProblemDeck parse_deck(const std::string& text) {
  ProblemDeck deck;
  deck.name = "custom";
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool have_mesh = false;
  bool have_particles = false;

  while (std::getline(in, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank line

    std::vector<std::string> args;
    std::string tok;
    while (ls >> tok) args.push_back(tok);
    auto need = [&](std::size_t n) {
      if (args.size() != n) {
        deck_error(line_no, "key '" + key + "' expects " + std::to_string(n) +
                                " argument(s), got " +
                                std::to_string(args.size()));
      }
    };

    if (key == "name") {
      need(1);
      deck.name = args[0];
    } else if (key == "nx") {
      need(1);
      deck.nx = static_cast<std::int32_t>(parse_int(args[0], line_no));
      have_mesh = true;
    } else if (key == "ny") {
      need(1);
      deck.ny = static_cast<std::int32_t>(parse_int(args[0], line_no));
      have_mesh = true;
    } else if (key == "width") {
      need(1);
      deck.width_cm = parse_number(args[0], line_no);
    } else if (key == "height") {
      need(1);
      deck.height_cm = parse_number(args[0], line_no);
    } else if (key == "density") {
      need(1);
      deck.base_density_kg_m3 = parse_number(args[0], line_no);
    } else if (key == "region") {
      need(5);
      RegionSpec r;
      r.x0 = parse_number(args[0], line_no);
      r.y0 = parse_number(args[1], line_no);
      r.x1 = parse_number(args[2], line_no);
      r.y1 = parse_number(args[3], line_no);
      r.density_kg_m3 = parse_number(args[4], line_no);
      if (r.x1 < r.x0 || r.y1 < r.y0) {
        deck_error(line_no, "region rectangle is inverted");
      }
      deck.regions.push_back(r);
    } else if (key == "source") {
      need(4);
      deck.src_x0 = parse_number(args[0], line_no);
      deck.src_y0 = parse_number(args[1], line_no);
      deck.src_x1 = parse_number(args[2], line_no);
      deck.src_y1 = parse_number(args[3], line_no);
      if (deck.src_x1 < deck.src_x0 || deck.src_y1 < deck.src_y0) {
        deck_error(line_no, "source rectangle is inverted");
      }
    } else if (key == "energy") {
      need(1);
      deck.initial_energy_ev = parse_number(args[0], line_no);
    } else if (key == "particles") {
      need(1);
      deck.n_particles = parse_int(args[0], line_no);
      have_particles = true;
    } else if (key == "dt") {
      need(1);
      deck.dt_s = parse_number(args[0], line_no);
    } else if (key == "timesteps") {
      need(1);
      deck.n_timesteps = static_cast<std::int32_t>(parse_int(args[0], line_no));
    } else if (key == "seed") {
      need(1);
      deck.seed = static_cast<std::uint64_t>(parse_int(args[0], line_no));
    } else if (key == "molar_mass") {
      need(1);
      deck.molar_mass_g_mol = parse_number(args[0], line_no);
    } else if (key == "mass_number") {
      need(1);
      deck.mass_number = parse_number(args[0], line_no);
    } else if (key == "min_energy") {
      need(1);
      deck.min_energy_ev = parse_number(args[0], line_no);
    } else if (key == "min_weight") {
      need(1);
      deck.min_weight = parse_number(args[0], line_no);
    } else if (key == "roulette") {
      need(1);
      deck.roulette_survival = parse_number(args[0], line_no);
      if (deck.roulette_survival < 0.0 || deck.roulette_survival >= 1.0) {
        deck_error(line_no, "roulette survival must be in [0, 1)");
      }
    } else if (key == "xs_points") {
      need(1);
      deck.xs.points = static_cast<std::int32_t>(parse_int(args[0], line_no));
    } else {
      deck_error(line_no, "unknown key '" + key + "'");
    }
  }

  if (!have_mesh) throw Error("deck must define nx/ny");
  if (!have_particles) throw Error("deck must define particles");
  NEUTRAL_REQUIRE(deck.nx >= 1 && deck.ny >= 1, "mesh must be non-empty");
  NEUTRAL_REQUIRE(deck.n_particles >= 1, "particle count must be positive");
  NEUTRAL_REQUIRE(deck.dt_s > 0.0, "dt must be positive");
  NEUTRAL_REQUIRE(deck.n_timesteps >= 1, "timesteps must be positive");
  return deck;
}

ProblemDeck load_deck(const std::string& path) {
  std::ifstream in(path);
  NEUTRAL_REQUIRE(in.good(), "cannot open deck file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_deck(text.str());
}

std::string format_deck(const ProblemDeck& deck) {
  std::ostringstream out;
  out.precision(17);
  out << "# neutral-mc problem deck\n";
  out << "name " << deck.name << '\n';
  out << "nx " << deck.nx << "\nny " << deck.ny << '\n';
  out << "width " << deck.width_cm << "\nheight " << deck.height_cm << '\n';
  out << "density " << deck.base_density_kg_m3 << '\n';
  for (const RegionSpec& r : deck.regions) {
    out << "region " << r.x0 << ' ' << r.y0 << ' ' << r.x1 << ' ' << r.y1
        << ' ' << r.density_kg_m3 << '\n';
  }
  out << "source " << deck.src_x0 << ' ' << deck.src_y0 << ' ' << deck.src_x1
      << ' ' << deck.src_y1 << '\n';
  out << "energy " << deck.initial_energy_ev << '\n';
  out << "particles " << deck.n_particles << '\n';
  out << "dt " << deck.dt_s << '\n';
  out << "timesteps " << deck.n_timesteps << '\n';
  out << "seed " << deck.seed << '\n';
  out << "molar_mass " << deck.molar_mass_g_mol << '\n';
  out << "mass_number " << deck.mass_number << '\n';
  out << "min_energy " << deck.min_energy_ev << '\n';
  out << "min_weight " << deck.min_weight << '\n';
  if (deck.roulette_survival > 0.0) {
    out << "roulette " << deck.roulette_survival << '\n';
  }
  out << "xs_points " << deck.xs.points << '\n';
  return out.str();
}

void save_deck(const ProblemDeck& deck, const std::string& path) {
  std::ofstream out(path);
  NEUTRAL_REQUIRE(out.good(), "cannot open deck output " + path);
  out << format_deck(deck);
}

}  // namespace neutral
