// Threefry2x64 counter-based random number generator (CBRNG).
//
// Re-implementation of the Threefry generator from Salmon et al., "Parallel
// random numbers: as easy as 1, 2, 3" (SC'11) — the generator the paper
// selects via Random123 (§IV-F).  Threefry is the Threefish block cipher
// with the tweak removed and the number of rounds reduced to 20, which
// passes BigCrush while costing a handful of ALU ops per 128 random bits.
//
// Being counter-based makes it stateless: the caller owns a (key, counter)
// pair and the generator is a pure function `block = threefry(key, counter)`.
// neutral keys each particle's stream with (master seed, particle id), so
// particle histories are reproducible regardless of scheduling, thread
// count, or parallelisation scheme — the property the cross-scheme
// equivalence tests rely on.
//
// Two implementations are provided:
//   * threefry2x64(...)           — unrolled production path.
//   * threefry2x64_reference(...) — straightforward loop used by tests to
//     cross-validate the unrolled code round for round.
#pragma once

#include <array>
#include <cstdint>

namespace neutral::rng {

/// 128-bit counter / key / output block for the 2x64 configuration.
using u64x2 = std::array<std::uint64_t, 2>;

/// Number of mix rounds; 20 is the Random123 default with a large safety
/// margin over the 13-round Crush-resistant minimum.
inline constexpr int kThreefryRounds = 20;

/// Production (fully unrolled) Threefry2x64-20.
u64x2 threefry2x64(const u64x2& counter, const u64x2& key);

/// First words of four consecutive blocks in one call:
///   out[k] == threefry2x64({counter0 + k, 0}, key)[0]   for k in 0..3.
///
/// The four blocks are independent, so their 20-round add/rotate/xor
/// dependency chains — strictly serial within one block — are interleaved
/// lane-wise and overlap in the core's pipelines (or vectorise outright).
/// This is the cipher side of the RNG batching optimisation: BatchedStream
/// buffers the four words so a typical 2-4 draw collision pays roughly one
/// chain latency instead of one per draw.
std::array<std::uint64_t, 4> threefry2x64x4_first(std::uint64_t counter0,
                                                  const u64x2& key);

/// Reference implementation: identical mathematics written as a plain
/// round-loop.  Exists so that tests can detect transcription slips in the
/// unrolled version; also accepts a round-count override for diffusion
/// experiments.
u64x2 threefry2x64_reference(const u64x2& counter, const u64x2& key,
                             int rounds = kThreefryRounds);

}  // namespace neutral::rng
