#include "rng/philox.h"

#include "util/error.h"

namespace neutral::rng {
namespace {

// Multipliers and Weyl-sequence key increments from Salmon et al. §5.3.
constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

struct HiLo {
  std::uint32_t hi;
  std::uint32_t lo;
};

constexpr HiLo mulhilo(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
  return {static_cast<std::uint32_t>(p >> 32), static_cast<std::uint32_t>(p)};
}

constexpr u32x4 round_once(const u32x4& x, const u32x2& k) {
  const HiLo p0 = mulhilo(kMul0, x[0]);
  const HiLo p1 = mulhilo(kMul1, x[2]);
  return {p1.hi ^ x[1] ^ k[0], p1.lo, p0.hi ^ x[3] ^ k[1], p0.lo};
}

constexpr u32x2 bump_key(const u32x2& k) {
  return {k[0] + kWeyl0, k[1] + kWeyl1};
}

}  // namespace

u32x4 philox4x32_reference(const u32x4& counter, const u32x2& key,
                           int rounds) {
  NEUTRAL_REQUIRE(rounds >= 0 && rounds <= 16,
                  "philox4x32 supports 0..16 rounds");
  u32x4 x = counter;
  u32x2 k = key;
  for (int r = 0; r < rounds; ++r) {
    x = round_once(x, k);
    k = bump_key(k);
  }
  return x;
}

u32x4 philox4x32(const u32x4& counter, const u32x2& key) {
  u32x4 x = counter;
  u32x2 k = key;
  // 10 rounds, fully unrolled.
  x = round_once(x, k); k = bump_key(k);
  x = round_once(x, k); k = bump_key(k);
  x = round_once(x, k); k = bump_key(k);
  x = round_once(x, k); k = bump_key(k);
  x = round_once(x, k); k = bump_key(k);
  x = round_once(x, k); k = bump_key(k);
  x = round_once(x, k); k = bump_key(k);
  x = round_once(x, k); k = bump_key(k);
  x = round_once(x, k); k = bump_key(k);
  x = round_once(x, k);
  return x;
}

}  // namespace neutral::rng
