#include "rng/threefry.h"

#include "util/error.h"

namespace neutral::rng {
namespace {

// Skein key-schedule parity constant (Threefish specification).
constexpr std::uint64_t kParity = 0x1BD11BDAA9FC1A22ULL;

// Rotation distances for the 2x64 configuration (Salmon et al., Table 2).
constexpr int kRot[8] = {16, 42, 12, 31, 16, 32, 24, 21};

constexpr std::uint64_t rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

}  // namespace

u64x2 threefry2x64_reference(const u64x2& counter, const u64x2& key,
                             int rounds) {
  NEUTRAL_REQUIRE(rounds >= 0 && rounds <= 32,
                  "threefry2x64 supports 0..32 rounds");
  const std::uint64_t ks[3] = {key[0], key[1], kParity ^ key[0] ^ key[1]};
  std::uint64_t x0 = counter[0] + ks[0];
  std::uint64_t x1 = counter[1] + ks[1];
  for (int r = 0; r < rounds; ++r) {
    x0 += x1;
    x1 = rotl64(x1, kRot[r % 8]);
    x1 ^= x0;
    if ((r + 1) % 4 == 0) {
      const std::uint64_t j = static_cast<std::uint64_t>((r + 1) / 4);
      x0 += ks[j % 3];
      x1 += ks[(j + 1) % 3] + j;
    }
  }
  return {x0, x1};
}

u64x2 threefry2x64(const u64x2& counter, const u64x2& key) {
  const std::uint64_t ks0 = key[0];
  const std::uint64_t ks1 = key[1];
  const std::uint64_t ks2 = kParity ^ key[0] ^ key[1];

  std::uint64_t x0 = counter[0] + ks0;
  std::uint64_t x1 = counter[1] + ks1;

  // One macro expansion per mix round keeps the compiler's scheduling window
  // wide open; this is the exact unrolling Random123 performs.
#define NEUTRAL_TF_ROUND(R)          \
  x0 += x1;                          \
  x1 = rotl64(x1, kRot[(R) % 8]);    \
  x1 ^= x0;

  NEUTRAL_TF_ROUND(0) NEUTRAL_TF_ROUND(1) NEUTRAL_TF_ROUND(2) NEUTRAL_TF_ROUND(3)
  x0 += ks1; x1 += ks2 + 1;
  NEUTRAL_TF_ROUND(4) NEUTRAL_TF_ROUND(5) NEUTRAL_TF_ROUND(6) NEUTRAL_TF_ROUND(7)
  x0 += ks2; x1 += ks0 + 2;
  NEUTRAL_TF_ROUND(8) NEUTRAL_TF_ROUND(9) NEUTRAL_TF_ROUND(10) NEUTRAL_TF_ROUND(11)
  x0 += ks0; x1 += ks1 + 3;
  NEUTRAL_TF_ROUND(12) NEUTRAL_TF_ROUND(13) NEUTRAL_TF_ROUND(14) NEUTRAL_TF_ROUND(15)
  x0 += ks1; x1 += ks2 + 4;
  NEUTRAL_TF_ROUND(16) NEUTRAL_TF_ROUND(17) NEUTRAL_TF_ROUND(18) NEUTRAL_TF_ROUND(19)
  x0 += ks2; x1 += ks0 + 5;

#undef NEUTRAL_TF_ROUND

  return {x0, x1};
}

std::array<std::uint64_t, 4> threefry2x64x4_first(std::uint64_t counter0,
                                                  const u64x2& key) {
  const std::uint64_t ks0 = key[0];
  const std::uint64_t ks1 = key[1];
  const std::uint64_t ks2 = kParity ^ key[0] ^ key[1];

  // Lane l runs the exact threefry2x64({counter0 + l, 0}, key) schedule;
  // the fixed-trip lane loops unroll (and on wide cores vectorise), which
  // is the whole point: four serial round chains in flight at once.
  std::uint64_t x0[4];
  std::uint64_t x1[4];
  for (int l = 0; l < 4; ++l) {
    x0[l] = counter0 + static_cast<std::uint64_t>(l) + ks0;
    x1[l] = ks1;  // counter word 1 is always 0 on the draw path
  }

#define NEUTRAL_TF4_ROUND(R)                \
  for (int l = 0; l < 4; ++l) {             \
    x0[l] += x1[l];                         \
    x1[l] = rotl64(x1[l], kRot[(R) % 8]);   \
    x1[l] ^= x0[l];                         \
  }
#define NEUTRAL_TF4_INJECT(KA, KB, J)       \
  for (int l = 0; l < 4; ++l) {             \
    x0[l] += (KA);                          \
    x1[l] += (KB) + (J);                    \
  }

  NEUTRAL_TF4_ROUND(0) NEUTRAL_TF4_ROUND(1) NEUTRAL_TF4_ROUND(2) NEUTRAL_TF4_ROUND(3)
  NEUTRAL_TF4_INJECT(ks1, ks2, 1)
  NEUTRAL_TF4_ROUND(4) NEUTRAL_TF4_ROUND(5) NEUTRAL_TF4_ROUND(6) NEUTRAL_TF4_ROUND(7)
  NEUTRAL_TF4_INJECT(ks2, ks0, 2)
  NEUTRAL_TF4_ROUND(8) NEUTRAL_TF4_ROUND(9) NEUTRAL_TF4_ROUND(10) NEUTRAL_TF4_ROUND(11)
  NEUTRAL_TF4_INJECT(ks0, ks1, 3)
  NEUTRAL_TF4_ROUND(12) NEUTRAL_TF4_ROUND(13) NEUTRAL_TF4_ROUND(14) NEUTRAL_TF4_ROUND(15)
  NEUTRAL_TF4_INJECT(ks1, ks2, 4)
  NEUTRAL_TF4_ROUND(16) NEUTRAL_TF4_ROUND(17) NEUTRAL_TF4_ROUND(18) NEUTRAL_TF4_ROUND(19)
  NEUTRAL_TF4_INJECT(ks2, ks0, 5)

#undef NEUTRAL_TF4_INJECT
#undef NEUTRAL_TF4_ROUND

  return {x0[0], x0[1], x0[2], x0[3]};
}

}  // namespace neutral::rng
