// Per-particle random streams on top of the counter-based generators.
//
// neutral stores a (key, counter) pair per particle (§IV-F): the key is
// (master seed, particle id) and the counter advances once per draw.  A
// stream is therefore 16 bytes of state, cheap to carry in the particle
// record, and two particles' streams never collide.  Because draws depend
// only on (key, counter), the Over Particles and Over Events schemes consume
// *identical* random sequences for the same particle — the basis of the
// cross-scheme equivalence tests — and the stream can be persisted into the
// particle record and resumed at any point with no hidden state.
#pragma once

#include <cmath>
#include <cstdint>

#include "rng/threefry.h"

namespace neutral::rng {

/// Convert 64 random bits to a double uniform on [0, 1).
/// Uses the top 53 bits so every representable value is equally likely.
constexpr double u01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Convert to a double on (0, 1] — safe as a log() argument.
constexpr double u01_open_below(std::uint64_t bits) {
  return 1.0 - u01(bits);
}

/// Derive an independent master seed for a job's RNG substream.
///
/// A batch of jobs expanded from one base seed must each behave exactly as
/// if run alone: particle i of job j draws from the stream keyed
/// (derive_stream_seed(base, j), i), so the substream depends only on
/// (base seed, job id) — never on worker count, queue order or batch
/// composition.  One Threefry block keyed by the base seed gives full
/// 64-bit avalanche between consecutive job ids, unlike base+id arithmetic
/// which would make job j's particle streams collide with job j+1's.
constexpr std::uint64_t kStreamDeriveDomain = 0x62617463685f6964ull;  // "batch_id"

inline std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                        std::uint64_t stream_id) {
  return threefry2x64({stream_id, kStreamDeriveDomain},
                      {base_seed, kStreamDeriveDomain})[0];
}

/// A resumable, counted stream of uniforms for one particle.
///
/// One draw consumes one counter value (the second word of each Threefry
/// block is deliberately unused): save/restore of the bare counter at *any*
/// point reproduces the remainder of the sequence exactly, which the Over
/// Events scheme relies on when it re-gathers particle state every kernel.
class ParticleStream {
 public:
  ParticleStream() = default;

  /// Key the stream with (master seed, particle id).
  ParticleStream(std::uint64_t seed, std::uint64_t particle_id)
      : key_{seed, particle_id} {}

  /// Resume a stream mid-history from a persisted counter.
  ParticleStream(std::uint64_t seed, std::uint64_t particle_id,
                 std::uint64_t counter)
      : key_{seed, particle_id}, counter_(counter) {}

  /// Next uniform double on [0, 1).
  double next() {
    const u64x2 block = threefry2x64({counter_++, 0}, key_);
    return u01(block[0]);
  }

  /// Exponentially distributed deviate with unit mean: the number of mean
  /// free paths to the next collision (§V pseudo-code).
  double next_exponential() {
    const u64x2 block = threefry2x64({counter_++, 0}, key_);
    return -std::log(u01_open_below(block[0]));
  }

  /// Uniform on [lo, hi).
  double next_range(double lo, double hi) { return lo + (hi - lo) * next(); }

  /// Counter state for persistence into the particle record.
  [[nodiscard]] std::uint64_t counter() const { return counter_; }

  /// Total uniforms drawn so far on this stream (== counter: 1 draw/block).
  [[nodiscard]] std::uint64_t draws() const { return counter_; }

  [[nodiscard]] std::uint64_t seed() const { return key_[0]; }
  [[nodiscard]] std::uint64_t particle_id() const { return key_[1]; }

 private:
  u64x2 key_{0, 0};
  std::uint64_t counter_ = 0;
};

/// ParticleStream with a small block buffer — the RNG batching fast path.
///
/// Consumes the *identical* (counter, 0)/word-0 sequence as ParticleStream:
/// draw k still burns counter k and yields threefry({k, 0}, key)[0], so the
/// two classes are interchangeable draw for draw and a run flipped between
/// them reproduces bit-identical histories.  The difference is purely
/// mechanical: a refill computes kBatch consecutive blocks in one
/// interleaved cipher call (threefry2x64x4_first), so subsequent draws are
/// buffer loads instead of full serial cipher rounds.  Resumable at any
/// counter like ParticleStream; unconsumed buffered words are discarded on
/// persistence (the counter alone is the state of record).
class BatchedStream {
 public:
  static constexpr std::uint64_t kBatch = 4;

  BatchedStream() = default;

  /// Key the stream with (master seed, particle id).
  BatchedStream(std::uint64_t seed, std::uint64_t particle_id)
      : key_{seed, particle_id} {}

  /// Resume a stream mid-history from a persisted counter.
  BatchedStream(std::uint64_t seed, std::uint64_t particle_id,
                std::uint64_t counter)
      : key_{seed, particle_id}, counter_(counter) {}

  /// Next uniform double on [0, 1).
  double next() { return u01(next_bits()); }

  /// Exponentially distributed deviate with unit mean.
  double next_exponential() {
    return -std::log(u01_open_below(next_bits()));
  }

  /// Uniform on [lo, hi).
  double next_range(double lo, double hi) { return lo + (hi - lo) * next(); }

  [[nodiscard]] std::uint64_t counter() const { return counter_; }
  [[nodiscard]] std::uint64_t draws() const { return counter_; }
  [[nodiscard]] std::uint64_t seed() const { return key_[0]; }
  [[nodiscard]] std::uint64_t particle_id() const { return key_[1]; }

 private:
  std::uint64_t next_bits() {
    if (remaining_ == 0) {
      block_ = threefry2x64x4_first(counter_, key_);
      block_base_ = counter_;
      remaining_ = kBatch;
    }
    const std::uint64_t bits = block_[counter_ - block_base_];
    ++counter_;
    --remaining_;
    return bits;
  }

  u64x2 key_{0, 0};
  std::uint64_t counter_ = 0;
  std::uint64_t block_base_ = 0;
  std::uint64_t remaining_ = 0;
  std::array<std::uint64_t, kBatch> block_{};
};

/// Bulk stream for initialisation-time sampling (source positions etc.):
/// uses both words of each block for full throughput.  Not resumable at
/// draw granularity — only used where the whole sequence is drawn at once.
class BulkStream {
 public:
  BulkStream(std::uint64_t seed, std::uint64_t stream_id)
      : key_{seed, stream_id} {}

  double next() {
    if (have_spare_) {
      have_spare_ = false;
      return u01(spare_);
    }
    const u64x2 block = threefry2x64({counter_++, 1}, key_);
    spare_ = block[1];
    have_spare_ = true;
    return u01(block[0]);
  }

 private:
  u64x2 key_;
  std::uint64_t counter_ = 0;
  std::uint64_t spare_ = 0;
  bool have_spare_ = false;
};

}  // namespace neutral::rng
