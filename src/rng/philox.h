// Philox4x32-10 counter-based random number generator.
//
// Second member of the Random123 suite (Salmon et al., SC'11), included so
// the RNG micro-benchmark can compare the multiplication-based Philox
// against the ARX-based Threefry — the suite-selection question §IV-F of
// the paper raises for diverse architectures (Philox maps well onto GPUs
// with fast 32-bit multipliers, Threefry onto CPUs with fast rotates).
#pragma once

#include <array>
#include <cstdint>

namespace neutral::rng {

using u32x4 = std::array<std::uint32_t, 4>;
using u32x2 = std::array<std::uint32_t, 2>;

inline constexpr int kPhiloxRounds = 10;

/// Production Philox4x32-10: 4x32-bit counter, 2x32-bit key.
u32x4 philox4x32(const u32x4& counter, const u32x2& key);

/// Loop-form reference used by the cross-validation tests.
u32x4 philox4x32_reference(const u32x4& counter, const u32x2& key,
                           int rounds = kPhiloxRounds);

}  // namespace neutral::rng
