// `neutral` — the mini-app driver binary.
//
// The reproduction equivalent of the original mini-app's executable: load a
// problem (a named paper test case or a .params deck file), pick the
// parallelisation scheme and the §VI optimisation knobs from the command
// line, solve, and print a full run report with conservation validation.
//
//   $ neutral --problem csp --scheme particles --threads 8
//   $ neutral --deck my_problem.params --scheme events --tally deferred
//   $ neutral --problem scatter --profile            # §VI-A grind table
//   $ neutral --problem csp --heatmap out.ppm        # deposition image
//   $ neutral --problem csp --shards 8               # fork-join one deck
//   $ neutral --problem csp --domains 2x2            # decompose the mesh
//   $ neutral --problem csp --domains 2x2 --shards 2 --scheme events
//       --layout soa  (one command; the full cross-product)
#include <cstdio>
#include <string>

#include "batch/domain.h"
#include "batch/shard.h"
#include "core/simulation.h"
#include "io/deck_io.h"
#include "io/results_io.h"
#include "mesh/heatmap.h"
#include "perf/profiler.h"
#include "runtime/host_info.h"
#include "util/cli.h"
#include "util/error.h"

namespace {

using namespace neutral;

void print_report(const SimulationConfig& cfg, const RunResult& r) {
  std::printf("\n== neutral run report ==\n");
  std::printf("problem        : %s  (%d x %d cells, %lld particles, %d "
              "timesteps)\n",
              cfg.deck.name.c_str(), cfg.deck.nx, cfg.deck.ny,
              static_cast<long long>(cfg.deck.n_particles),
              cfg.deck.n_timesteps);
  std::printf("configuration  : %s / %s / tally=%s / lookup=%s / "
              "schedule=%s\n",
              to_string(cfg.scheme), to_string(cfg.layout),
              to_string(cfg.tally_mode), to_string(cfg.lookup),
              cfg.schedule.name().c_str());
  if (cfg.rng_batch || cfg.branchless_events || cfg.over_events.sort_events ||
      cfg.over_events.fuse_rounds || cfg.pipeline_histories > 1 ||
      cfg.tally_direct) {
    std::string pipeline;
    if (cfg.pipeline_histories > 1) {
      pipeline =
          " pipeline-histories=" + std::to_string(cfg.pipeline_histories);
    }
    std::printf("optimisations  :%s%s%s%s%s%s\n",
                cfg.rng_batch ? " rng-batch" : "",
                cfg.branchless_events ? " branchless-events" : "",
                cfg.over_events.sort_events ? " sort-events" : "",
                cfg.over_events.fuse_rounds ? " fuse-rounds" : "",
                pipeline.c_str(),
                cfg.tally_direct ? " tally-direct" : "");
  }
  std::printf("wallclock      : %.4f s   (%.3g events/s)\n", r.total_seconds,
              r.events_per_second());
  std::printf("events         : %llu facets (%llu reflections), %llu "
              "collisions (%llu abs / %llu scat), %llu census\n",
              static_cast<unsigned long long>(r.counters.facets),
              static_cast<unsigned long long>(r.counters.reflections),
              static_cast<unsigned long long>(r.counters.collisions),
              static_cast<unsigned long long>(r.counters.absorptions),
              static_cast<unsigned long long>(r.counters.scatters),
              static_cast<unsigned long long>(r.counters.censuses));
  std::printf("terminations   : %llu energy cutoff, %llu weight cutoff "
              "(%llu roulette kills, %llu survivals)\n",
              static_cast<unsigned long long>(r.counters.deaths_energy),
              static_cast<unsigned long long>(r.counters.deaths_weight),
              static_cast<unsigned long long>(r.counters.roulette_kills),
              static_cast<unsigned long long>(r.counters.roulette_survivals));
  std::printf("rng draws      : %llu   xs lookups: %llu   tally flushes: "
              "%llu\n",
              static_cast<unsigned long long>(r.counters.rng_draws),
              static_cast<unsigned long long>(r.counters.xs_lookups),
              static_cast<unsigned long long>(r.counters.tally_flushes));
  std::printf("tally          : total %.8g eV, checksum %.8g, footprint "
              "%.1f MB\n",
              r.budget.tally_total, r.tally_checksum,
              static_cast<double>(r.tally_footprint_bytes) / (1 << 20));
  std::printf("memory         : mesh peak %.1f MB, bank peak %.2f MB "
              "(particles + event workspace)\n",
              static_cast<double>(r.peak_mesh_bytes) / (1 << 20),
              static_cast<double>(r.peak_bank_bytes) / (1 << 20));
  std::printf("population     : %lld surviving of %lld\n",
              static_cast<long long>(r.population),
              static_cast<long long>(cfg.deck.n_particles));
  std::printf("conservation   : energy %.3g, tally consistency %.3g -> %s\n",
              r.budget.conservation_error(),
              r.budget.tally_consistency_error(),
              r.budget.conserved(1e-9) ? "PASS" : "FAIL");
}

// RunResult::phases is extensive and survives shard/domain reduction, so
// one formatter serves the plain, sharded and decomposed paths — and
// matches the batch sweep's table byte-for-byte in layout.
void print_profile(const RunResult& r) {
  std::fputs(format_grind_table(r.phases, PhaseProfiler::tsc_ghz()).c_str(),
             stdout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliParser cli(argc, argv);
    const std::string problem =
        cli.option("problem", "csp", "built-in problem: stream|scatter|csp");
    const std::string deck_file =
        cli.option("deck", "", "load a .params deck file instead");
    const double mesh_scale = cli.option_double(
        "mesh-scale", 0.08, "mesh resolution vs the paper's 4000^2");
    const double particle_scale = cli.option_double(
        "particle-scale", 0.02, "particles vs the paper's 1e6/1e7");
    SimulationConfig config;
    config.scheme = scheme_from_string(
        cli.option("scheme", "particles", "particles|events (§V)"));
    config.layout = layout_from_string(cli.option("layout", "aos", "aos|soa (§VI-D)"));
    config.tally_mode = tally_mode_from_string(cli.option(
        "tally", "atomic", "atomic|privatized|merge-step|deferred (§VI-F/G)"));
    config.lookup = lookup_from_string(cli.option(
        "lookup", "cached", "binary|cached|bucketed|unionised (§VI-A)"));
    config.schedule = schedule_from_string(
        cli.option("schedule", "static", "static|dynamic|guided[,chunk] (§VI-C)"));
    config.rng_batch = cli.flag(
        "rng-batch",
        "batch RNG draws 4 counters per cipher call (bit-identical draws)");
    config.branchless_events = cli.flag(
        "branchless-events",
        "select-based event search/facet math (bit-identical arithmetic)");
    config.over_events.sort_events = cli.flag(
        "sort-events",
        "sort pending events between over-events kernels so each handler "
        "runs a dense homogeneous list (over-events scheme only)");
    config.over_events.fuse_rounds = cli.flag(
        "fuse-rounds",
        "fuse the over-events search and handler kernels into one sweep "
        "per round (bit-identical; over-events scheme only)");
    const long pipeline_histories = cli.option_int(
        "pipeline-histories", 1,
        "software-pipeline K in-flight histories per thread in the "
        "over-particles loop (bit-identical tallies; K >= 1, 1 = off)");
    config.tally_direct = cli.flag(
        "tally-direct",
        "non-atomic tally deposits when running on one thread "
        "(bit-identical; ignored at threads > 1)");
    config.threads =
        static_cast<std::int32_t>(cli.option_int("threads", 0, "OpenMP threads (0 = default)"));
    config.profile = cli.flag("profile", "enable the §VI-A phase profiler");
    const long timesteps = cli.option_int("timesteps", 0, "override deck timesteps");
    const long particles = cli.option_int("particles", 0, "override deck particle count");
    const std::string heatmap =
        cli.option("heatmap", "", "write the deposition heat map (PPM)");
    const std::string record =
        cli.option("record", "", "write a .results regression record");
    const std::string verify =
        cli.option("verify", "", "verify against a .results record");
    const auto shards = static_cast<std::int32_t>(cli.option_int(
        "shards", 0,
        "split the deck into N fork-join shard jobs (0 = run unsharded; "
        "sharded runs use compensated tallies, so any N >= 1 reduces to "
        "one bit-identical result)"));
    const auto shard_workers = static_cast<std::int32_t>(cli.option_int(
        "shard-workers", 0, "worker threads for sharded runs (0 = auto)"));
    const std::string domains = cli.option(
        "domains", "",
        "decompose the MESH into an RxC subdomain grid (e.g. 2x2): each "
        "subdomain materialises only its tally/density slab and particles "
        "migrate at subdomain facets; composes with every --scheme/--layout "
        "and with --shards (bank spans nested per subdomain), and any "
        "combination reduces to one bit-identical result");
    const auto domain_workers = static_cast<std::int32_t>(cli.option_int(
        "domain-workers", 0,
        "worker threads for domain-decomposed runs (0 = auto)"));
    if (!cli.finish()) return 0;

    NEUTRAL_REQUIRE(pipeline_histories >= 1,
                    "--pipeline-histories must be >= 1");
    config.pipeline_histories = static_cast<std::int32_t>(pipeline_histories);
    if (config.scheme == Scheme::kOverEvents && config.pipeline_histories > 1) {
      // The breadth-first scheme has no per-thread history loop to
      // pipeline; warn instead of failing so sweep scripts can apply one
      // flag set across both schemes.
      std::fprintf(stderr,
                   "neutral: warning: --pipeline-histories applies to the "
                   "over-particles scheme only; ignoring\n");
      config.pipeline_histories = 1;
    }

    config.deck = deck_file.empty()
                      ? deck_by_name(problem, mesh_scale, particle_scale)
                      : load_deck(deck_file);
    if (timesteps > 0) config.deck.n_timesteps = static_cast<std::int32_t>(timesteps);
    if (particles > 0) config.deck.n_particles = particles;
    if (config.scheme == Scheme::kOverEvents &&
        config.tally_mode == TallyMode::kAtomic && domains.empty()) {
      // The paper's Over Events configuration hoists atomics into the
      // separate tally loop (§VI-G); make that the scheme's default.
      // Domain runs keep atomic instead: run_domains forces compensation
      // (exact for both schemes) and deferred per-thread deposit buffers
      // grow with the bank — the footprint --domains exists to cap.  An
      // explicit --tally deferred is still honoured.
      config.tally_mode = TallyMode::kDeferredAtomic;
    }

    std::printf("# neutral-mc (%s)\n", host_banner().c_str());

    RunResult result;
    if (!domains.empty()) {
      // Domain decomposition: tile the mesh, migrate particles at
      // subdomain facets, stitch the slabs back bit-identically
      // (src/batch/domain.h).
      const auto [rows, cols] = batch::parse_domain_grid(domains);
      batch::EngineOptions engine_options;
      engine_options.workers = domain_workers;
      batch::BatchEngine engine(engine_options);
      batch::DomainOptions domain_options;
      domain_options.rows = rows;
      domain_options.cols = cols;
      // --shards composes: bank spans nested inside every subdomain.
      domain_options.shards = shards > 0 ? shards : 1;
      domain_options.threads_per_domain = config.threads > 0
                                              ? config.threads
                                              : 1;
      const batch::DomainRunReport domain_report =
          batch::run_domains(engine, config, domain_options);
      NEUTRAL_REQUIRE(domain_report.ok, domain_report.error);
      result = domain_report.merged;
      print_report(config, result);
      if (config.profile) print_profile(result);
      // Full mesh-resident footprint for the comparison: the summed tally
      // slabs (== the full tally) plus the full density field the slabs
      // avoided allocating.
      const std::uint64_t full_mesh_bytes =
          result.tally_footprint_bytes +
          static_cast<std::uint64_t>(config.deck.nx) * config.deck.ny *
              sizeof(double);
      std::printf("domains        : %dx%d grid x %d bank shard%s, %lld "
                  "migrations over %d rounds, %.4f s wall; peak slab "
                  "%.1f MB of %.1f MB full mesh\n",
                  domain_report.grid.rows, domain_report.grid.cols,
                  domain_report.shards,
                  domain_report.shards == 1 ? "" : "s",
                  static_cast<long long>(domain_report.migrations),
                  domain_report.rounds, domain_report.wall_seconds,
                  static_cast<double>(domain_report.peak_mesh_bytes) /
                      (1 << 20),
                  static_cast<double>(full_mesh_bytes) / (1 << 20));
      if (!heatmap.empty()) {
        // The stitched image covers the full grid; a bare mesh (no full
        // density field — the thing --domains avoids allocating) renders it.
        const StructuredMesh2D mesh(config.deck.nx, config.deck.ny,
                                    config.deck.width_cm,
                                    config.deck.height_cm);
        write_heatmap_ppm(heatmap, mesh, result.tally->hi.data());
        std::printf("heatmap        : wrote %s\n", heatmap.c_str());
      }
    } else if (shards > 0) {
      // Fork-join path: split the bank into shard jobs on a batch engine
      // and reduce.  The merged checksum/population are invariant to the
      // shard and worker counts (src/batch/shard.h).
      batch::EngineOptions engine_options;
      engine_options.workers = shard_workers;
      engine_options.threads_per_job = config.threads > 0 ? config.threads : 1;
      batch::BatchEngine engine(engine_options);
      batch::ShardOptions shard_options;
      shard_options.shards = shards;
      // Route an explicit --threads through the engine's oversubscription
      // clamp instead of baking the raw value into every shard.
      shard_options.threads_per_shard =
          engine.thread_budget(static_cast<std::size_t>(shards)).second;
      const batch::ShardedRunReport sharded =
          batch::run_sharded(engine, config, shard_options);
      NEUTRAL_REQUIRE(sharded.ok, sharded.error);
      result = sharded.merged;
      print_report(config, result);
      if (config.profile) print_profile(result);
      std::printf("sharding       : %d shards on %d workers, %.4f s wall "
                  "(%.3g events/s), imbalance %.2f\n",
                  shards, sharded.batch.workers, sharded.wall_seconds,
                  sharded.wall_seconds > 0.0
                      ? static_cast<double>(result.counters.total_events()) /
                            sharded.wall_seconds
                      : 0.0,
                  sharded.imbalance());
      if (!heatmap.empty()) {
        // The engine's cache still holds the world: reuse its mesh.
        const auto world = engine.cache().acquire(config.deck);
        write_heatmap_ppm(heatmap, world->mesh, result.tally->hi.data());
        std::printf("heatmap        : wrote %s\n", heatmap.c_str());
      }
    } else {
      Simulation sim(config);
      result = sim.run();
      print_report(config, result);
      if (config.profile) print_profile(result);
      if (!heatmap.empty()) {
        write_heatmap_ppm(heatmap, sim.mesh(), sim.tally().data());
        std::printf("heatmap        : wrote %s\n", heatmap.c_str());
      }
    }
    if ((shards > 0 || !domains.empty()) &&
        (!record.empty() || !verify.empty())) {
      std::printf("note           : decomposed runs (--shards/--domains) "
                  "use the compensated tally pipeline; their "
                  "records/checksums only compare against other decomposed "
                  "runs, not the plain path\n");
    }
    if (!record.empty()) {
      save_results(make_expected(config, result), record);
      std::printf("record         : wrote %s\n", record.c_str());
    }
    bool ok = result.budget.conserved(1e-9);
    if (!verify.empty()) {
      const ResultsCheck check =
          verify_results(load_results(verify), config, result);
      std::printf("verification   : %s%s%s\n", check.passed ? "PASS" : "FAIL",
                  check.passed ? "" : " — ", check.detail.c_str());
      ok = ok && check.passed;
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "neutral: %s\n", e.what());
    return 2;
  }
}
