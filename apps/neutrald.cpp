// `neutrald` — the batch engine served over TCP.
//
// Runs the NeutralServer (src/net/server.h): clients connect, submit decks
// or sweep specs (optionally sharded / domain-decomposed), stream
// completion events, and fetch bit-identical results — all against ONE
// shared engine and world cache, so repeated geometries build once no
// matter which connection sends them.
//
//   $ neutrald --port 4817                      # serve on 127.0.0.1:4817
//   $ neutrald --port 0 --quiet                 # ephemeral port, no logs
//   $ neutrald --max-run-wall-ms 60000
//              --max-queue-wait-ms 10000    (one command; serving deadlines)
//   $ neutral_batch --connect 127.0.0.1:4817    # run a sweep against it
//
// The deadline flags are what make the daemon safe to leave running: a job
// that exceeds --max-run-wall-ms completes as `timed_out` (cancelling its
// fork-join group) instead of holding a worker forever, and a job that
// waits past --max-queue-wait-ms is answered `timed_out` without running.
// A clean stop is a client `shutdown` op (the daemon drains and exits 0).
#include <cstdio>
#include <string>

#include "net/server.h"
#include "runtime/host_info.h"
#include "util/cli.h"
#include "util/error.h"

int main(int argc, char** argv) {
  using namespace neutral;
  try {
    CliParser cli(argc, argv);
    net::ServerOptions options;
    options.host = cli.option("host", "127.0.0.1",
                              "interface to bind (default loopback)");
    const long port_raw =
        cli.option_int("port", 4817, "TCP port (0 = ephemeral)");
    options.engine.workers = static_cast<std::int32_t>(
        cli.option_int("workers", 0, "engine worker threads (0 = auto)"));
    options.engine.threads_per_job = static_cast<std::int32_t>(cli.option_int(
        "threads-per-job", 0, "OpenMP threads per job (0 = auto)"));
    options.engine.queue_capacity = static_cast<std::size_t>(cli.option_int(
        "queue-capacity", 0, "bounded job queue depth (0 = auto)"));
    const long queue_wait_ms = cli.option_int(
        "max-queue-wait-ms", 0,
        "max time a job may wait for queue space or a worker before it "
        "completes as timed_out (0 = unbounded)");
    const long run_wall_ms = cli.option_int(
        "max-run-wall-ms", 0,
        "max running wall clock per job before it completes as "
        "timed_out (0 = unbounded)");
    const auto cache_mb = cli.option_int(
        "cache-mb", 0, "world cache byte budget in MiB (0 = unbounded)");
    const long aging_ms = cli.option_int(
        "priority-aging-ms", 0,
        "queued jobs gain one effective priority level per this many ms "
        "waited, so saturating high-priority traffic cannot starve "
        "low-priority work (0 = strict priority)");
    options.max_pending_submissions = static_cast<std::size_t>(cli.option_int(
        "max-pending", 64, "refuse submits beyond this many in flight"));
    options.max_retained_results = static_cast<std::size_t>(cli.option_int(
        "max-retained", 256, "finished submissions kept queryable"));
    const long max_connections = cli.option_int(
        "max-connections", 1024,
        "refuse TCP connections beyond this many open at once");
    const long max_inflight = cli.option_int(
        "max-inflight", 16,
        "refuse a connection's submits beyond this many of its submissions "
        "queued or running");
    const long metrics_port_raw = cli.option_int(
        "metrics-port", 0,
        "serve Prometheus text exposition over plain HTTP on this port "
        "(GET /metrics; 0 = disabled — the `metrics` frame op always works)");
    options.trace_path = cli.option(
        "trace-log", "",
        "append one JSON line per job lifecycle event here (src/obs/trace.h)");
    options.verbose = !cli.flag("quiet", "suppress per-request log lines");
    if (!cli.finish()) return 0;
    // Validate flags at startup: a daemon that limps along failing every
    // submission is worse than one that refuses to start.
    NEUTRAL_REQUIRE(port_raw >= 0 && port_raw <= 65535,
                    "--port must be 0..65535");
    NEUTRAL_REQUIRE(metrics_port_raw >= 0 && metrics_port_raw <= 65535,
                    "--metrics-port must be 0..65535");
    options.metrics_port = static_cast<std::uint16_t>(metrics_port_raw);
    NEUTRAL_REQUIRE(queue_wait_ms >= 0 && run_wall_ms >= 0,
                    "--max-queue-wait-ms / --max-run-wall-ms must be >= 0");
    NEUTRAL_REQUIRE(aging_ms >= 0, "--priority-aging-ms must be >= 0");
    NEUTRAL_REQUIRE(max_connections > 0, "--max-connections must be > 0");
    NEUTRAL_REQUIRE(max_inflight > 0, "--max-inflight must be > 0");
    options.port = static_cast<std::uint16_t>(port_raw);
    options.engine.policy.max_queue_wait =
        std::chrono::milliseconds(queue_wait_ms);
    options.engine.policy.max_run_wall =
        std::chrono::milliseconds(run_wall_ms);
    options.engine.policy.priority_aging = std::chrono::milliseconds(aging_ms);
    options.max_connections = static_cast<std::size_t>(max_connections);
    options.max_inflight_per_connection =
        static_cast<std::size_t>(max_inflight);
    options.engine.cache.max_bytes =
        static_cast<std::uint64_t>(cache_mb > 0 ? cache_mb : 0) << 20;

    net::NeutralServer server(options);
    const std::uint16_t port = server.start();
    // The "listening" line always prints (even with --quiet) and is
    // flushed: scripts and CI wait for it to know the port is live.
    std::printf("neutrald listening on %s:%u (%s)\n", options.host.c_str(),
                static_cast<unsigned>(port), host_banner().c_str());
    std::fflush(stdout);
    server.serve();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "neutrald: %s\n", e.what());
    return 2;
  }
}
