// `neutral_batch` — the batch execution engine CLI.
//
// Expands a parameter sweep into jobs, runs them concurrently on the
// worker pool (sharing Worlds between jobs with identical geometry), and
// prints a results table mirrored into CSV.
//
//   $ neutral_batch                         # built-in 12-job demo sweep
//   $ neutral_batch --spec my_sweep.spec --workers 4 --csv out.csv
//   $ neutral_batch --check-serial          # prove batch == serial physics
//   $ neutral_batch --write-spec sweep.spec # emit the default spec to edit
//   $ neutral_batch --shards 4              # fork-join every sweep job
//   $ neutral_batch --connect 127.0.0.1:4817  # run the sweep on a neutrald
//
// --connect runs the SAME sweep workflow against a running `neutrald`
// daemon instead of an in-process engine: the spec text is submitted over
// TCP, completion events stream back as jobs finish server-side, and the
// table/CSV carry the daemon's bit-identical results (columns match the
// local table, so the two CSVs diff directly).  Engine knobs (--workers,
// --threads-per-job, --queue-capacity, --cache-mb, --no-cache) belong to
// the daemon in this mode and are rejected here.
//
// Exit status is non-zero when ANY row is not "ok" — failed, timed out,
// cancelled, un-reduced, or energy-non-conserving — in every mode, local
// or remote, so scripted sweeps cannot bury a failure in the CSV.
//
// The oversubscription policy is workers x threads_per_job <= logical
// cpus; both knobs derive sensible defaults from the host (see
// batch/engine.h).
//
// --shards N splits every sweep job into N concurrent shard jobs and
// reduces each group deterministically (src/batch/shard.h): the merged
// checksum and population are bit-identical for any N >= 1 at any worker
// count.  (Sharded runs use compensated tallies, so their checksums are
// comparable across shard counts but not with the plain unsharded path.)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "batch/domain.h"
#include "batch/engine.h"
#include "batch/shard.h"
#include "batch/sweep.h"
#include "core/simulation.h"
#include "io/results_io.h"
#include "net/client.h"
#include "obs/trace.h"
#include "perf/profiler.h"
#include "runtime/host_info.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

namespace {

using namespace neutral;
using namespace neutral::batch;

// 2 schemes x 2 layouts x 3 problem sizes = 12 jobs on one shared world.
constexpr const char* kDefaultSpec =
    "# neutral_batch default sweep: 2 schemes x 2 layouts x 3 sizes\n"
    "deck csp\n"
    "mesh_scale 0.05\n"
    "timesteps 1\n"
    "seed 42\n"
    "axis particles 2000 4000 8000\n"
    "axis scheme particles events\n"
    "axis layout aos soa\n";

/// Re-run one outcome's exact config serially and compare checksums.
/// Bit-exact by construction when the job ran with threads=1 (counter-based
/// RNG + one OpenMP thread leave no reassociation freedom).
bool check_against_serial(const JobOutcome& outcome) {
  Simulation sim(outcome.config);
  const RunResult serial = sim.run();
  const bool same = serial.tally_checksum == outcome.result.tally_checksum &&
                    serial.counters.total_events() ==
                        outcome.result.counters.total_events();
  if (!same) {
    std::printf("  check FAIL %s: batch checksum %.17g != serial %.17g\n",
                outcome.label.c_str(), outcome.result.tally_checksum,
                serial.tally_checksum);
  }
  return same;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  NEUTRAL_REQUIRE(in.good(), "cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// The plain result table's column set — identical for local and remote
/// runs, so their CSVs diff column-for-column (CI pins the checksum and
/// population columns across the loopback boundary).
std::vector<std::string> result_columns() {
  return {"job", "label", "particles", "tally", "events", "events/s",
          "solve [s]", "tally checksum", "population", "world", "worker",
          "status"};
}

/// FAIL/TIMEOUT/CANCELLED prefixes keep the three non-ok outcomes
/// distinguishable in the table and CSV.
std::string outcome_cell(const JobOutcome& outcome) {
  if (outcome.ok) return "ok";
  if (outcome.timed_out) return "TIMEOUT: " + outcome.error;
  if (outcome.cancelled) return "CANCELLED: " + outcome.error;
  return "FAIL: " + outcome.error;
}

/// `--connect`: submit the sweep to a neutrald and render its rows through
/// the same table shape the in-process path uses.
int run_remote(const std::string& endpoint, const std::string& spec_text,
               std::int32_t shards, const std::string& domains,
               const std::string& csv, bool quiet) {
  const auto [host, port] = net::NeutralClient::parse_endpoint(endpoint);
  net::NeutralClient client(host, port);
  net::SubmitRequest request;
  request.spec_text = spec_text;
  request.shards = shards > 0 ? shards : 0;
  request.domains = domains;
  const std::uint64_t id = client.submit(request);
  std::printf("# neutral_batch --connect %s (submission #%llu)\n",
              endpoint.c_str(), static_cast<unsigned long long>(id));
  const net::RemoteResult result =
      client.wait(id, [&](const net::RemoteEvent& event) {
        if (quiet) return;
        std::printf("[remote worker %d] %-9s %-44s %8.3fs\n", event.worker,
                    event.status.c_str(), event.label.c_str(),
                    event.seconds);
      });

  ResultTable table("neutral_batch — " +
                        std::to_string(result.rows.size()) + " jobs via " +
                        endpoint,
                    result_columns());
  bool ok = result.ok();
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const net::RemoteRow& row = result.rows[i];
    if (row.status != "ok") ok = false;
    table.add_row(
        {std::to_string(i), row.label,
         ResultTable::cell(static_cast<long>(row.particles)), row.tally,
         ResultTable::cell(static_cast<unsigned long long>(row.events)),
         ResultTable::cell(row.seconds > 0.0
                               ? static_cast<double>(row.events) / row.seconds
                               : 0.0,
                           3),
         ResultTable::cell(row.seconds, 3),
         ResultTable::cell_full(row.checksum),
         ResultTable::cell(static_cast<long>(row.population)), "remote",
         "-",
         row.status == "ok" ? "ok" : row.status + ": " + row.error});
  }
  table.print();
  table.write_csv(csv);
  std::printf("wrote %s\n", csv.c_str());
  std::printf("\n== remote report ==\n");
  std::printf("submission     : #%llu -> %s%s%s\n",
              static_cast<unsigned long long>(id), result.status.c_str(),
              result.error.empty() ? "" : " — ", result.error.c_str());
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliParser cli(argc, argv);
    const std::string spec_path =
        cli.option("spec", "", "sweep spec file (see src/batch/sweep.h)");
    EngineOptions options;
    options.workers = static_cast<std::int32_t>(
        cli.option_int("workers", 0, "worker threads (0 = auto)"));
    options.threads_per_job = static_cast<std::int32_t>(cli.option_int(
        "threads-per-job", 0, "OpenMP threads per job (0 = auto)"));
    options.queue_capacity = static_cast<std::size_t>(cli.option_int(
        "queue-capacity", 0, "bounded queue depth (0 = auto)"));
    options.reuse_worlds =
        !cli.flag("no-cache", "rebuild the world for every job");
    const std::string csv =
        cli.option("csv", "neutral_batch.csv", "results CSV path");
    const std::string record_dir = cli.option(
        "record-dir", "", "write a .results regression record per job");
    const std::string write_spec = cli.option(
        "write-spec", "", "write the default sweep spec here and exit");
    const bool check_serial = cli.flag(
        "check-serial",
        "re-run each job serially and compare checksums (pins jobs to 1 "
        "thread: atomic tallies only reproduce bit-exactly single-threaded)");
    const bool quiet = cli.flag("quiet", "suppress per-job progress lines");
    const auto shards = static_cast<std::int32_t>(cli.option_int(
        "shards", 0,
        "split every sweep job into N fork-join shard jobs (0 = off; any "
        "N >= 1 reduces to bit-identical merged results)"));
    const std::string domains = cli.option(
        "domains", "",
        "domain-decompose every sweep job over an RxC mesh grid (e.g. "
        "2x2); composes with the sweep's scheme/layout axes and with "
        "--shards (bank spans nested per subdomain), reducing each job to "
        "one bit-identical row");
    const auto cache_mb = cli.option_int(
        "cache-mb", 0, "world cache byte budget in MiB (0 = unbounded)");
    const long aging_ms = cli.option_int(
        "priority-aging-ms", 0,
        "queued jobs gain one effective priority level per this many ms "
        "waited, so saturating high-priority traffic cannot starve "
        "low-priority work (0 = strict priority)");
    const std::string connect = cli.option(
        "connect", "",
        "run the sweep against a neutrald at host:port instead of "
        "in-process (composes with --spec/--shards/--domains)");
    options.profile = cli.flag(
        "profile",
        "collect per-phase TSC timings in every job and print the sweep's "
        "aggregate grind-time table (probes live in the over-particles "
        "scheme; physics and checksums are unchanged)");
    const std::string trace_log = cli.option(
        "trace-log", "",
        "append one JSON line per job lifecycle event here "
        "(src/obs/trace.h)");
    const bool rng_batch = cli.flag(
        "rng-batch",
        "buffer counter-based RNG draws in blocks of 4 (bit-identical "
        "sequence); overrides the spec's rng_batch key when set");
    const bool branchless_events = cli.flag(
        "branchless-events",
        "select-based facet/event-distance math in the hot loop "
        "(bit-identical results); overrides the spec when set");
    const bool sort_events = cli.flag(
        "sort-events",
        "sort particles by pending event between Over Events rounds "
        "(bit-identical at 1 thread per job); overrides the spec when set");
    const bool tally_direct = cli.flag(
        "tally-direct",
        "non-atomic tally deposits for single-threaded jobs "
        "(bit-identical; ignored at threads > 1); overrides the spec");
    const bool fuse_rounds = cli.flag(
        "fuse-rounds",
        "fuse the Over Events search and handler kernels into one sweep "
        "per round (bit-identical); overrides the spec when set");
    const long pipeline_histories = cli.option_int(
        "pipeline-histories", 1,
        "software-pipeline K in-flight histories per thread in the "
        "over-particles loop (bit-identical tallies; K >= 1); overrides "
        "the spec when K > 1");
    if (!cli.finish()) return 0;
    NEUTRAL_REQUIRE(pipeline_histories >= 1,
                    "--pipeline-histories must be >= 1");
    NEUTRAL_REQUIRE(aging_ms >= 0, "--priority-aging-ms must be >= 0");
    options.policy.priority_aging = std::chrono::milliseconds(aging_ms);
    options.cache.max_bytes =
        static_cast<std::uint64_t>(std::max(cache_mb, 0L)) << 20;

    if (!write_spec.empty()) {
      std::ofstream out(write_spec);
      NEUTRAL_REQUIRE(out.good(), "cannot write '" + write_spec + "'");
      out << kDefaultSpec;
      std::printf("wrote %s\n", write_spec.c_str());
      return 0;
    }

    if (!connect.empty()) {
      NEUTRAL_REQUIRE(!check_serial,
                      "--check-serial runs locally; not supported with "
                      "--connect");
      NEUTRAL_REQUIRE(record_dir.empty(),
                      "--record-dir is not supported with --connect");
      NEUTRAL_REQUIRE(!options.profile && trace_log.empty(),
                      "--profile / --trace-log observe the in-process "
                      "engine; start neutrald with --trace-log for the "
                      "daemon side");
      NEUTRAL_REQUIRE(options.workers == 0 && options.threads_per_job == 0 &&
                          options.queue_capacity == 0 &&
                          options.reuse_worlds && cache_mb == 0 &&
                          aging_ms == 0,
                      "engine knobs (--workers, --threads-per-job, "
                      "--queue-capacity, --no-cache, --cache-mb, "
                      "--priority-aging-ms) configure the daemon; set them "
                      "when starting neutrald");
      NEUTRAL_REQUIRE(!rng_batch && !branchless_events && !sort_events &&
                          !tally_direct && !fuse_rounds &&
                          pipeline_histories == 1,
                      "--connect submits the spec text verbatim; set the "
                      "rng_batch / branchless_events / sort_events / "
                      "tally_direct / fuse_rounds / pipeline_histories "
                      "keys in the spec instead");
      const std::string spec_text =
          spec_path.empty() ? kDefaultSpec : read_file(spec_path);
      return run_remote(connect, spec_text, shards, domains, csv, quiet);
    }

    // Bit-exact comparison requires one OpenMP thread per job: with more,
    // atomic tally adds reorder between runs and checksums legitimately
    // wobble in the last bits.
    if (check_serial) options.threads_per_job = 1;

    SweepSpec spec = spec_path.empty() ? parse_sweep(kDefaultSpec)
                                       : load_sweep(spec_path);
    // CLI flags can only switch the fast paths on: a spec that named them
    // keeps them, so recorded sweeps stay self-describing.
    if (rng_batch) spec.base.rng_batch = true;
    if (branchless_events) spec.base.branchless_events = true;
    if (sort_events) spec.base.over_events.sort_events = true;
    if (tally_direct) spec.base.tally_direct = true;
    if (fuse_rounds) spec.base.over_events.fuse_rounds = true;
    if (pipeline_histories > 1) {
      spec.base.pipeline_histories =
          static_cast<std::int32_t>(pipeline_histories);
    }
    const std::vector<Job> sweep_jobs = expand_sweep(spec);
    std::unique_ptr<obs::TraceLog> trace;
    if (!trace_log.empty()) {
      trace = std::make_unique<obs::TraceLog>(trace_log);
      options.trace = trace.get();
    }
    BatchEngine engine(options);

    // --domains: run every sweep job through the mesh decomposition and
    // reduce each to one bit-identical row.  Decks run one after another
    // (each solve is itself a fork-join over the pool), so this path has
    // its own table and exits here.
    if (!domains.empty()) {
      NEUTRAL_REQUIRE(!check_serial,
                      "--check-serial compares the plain pipeline; domain "
                      "runs use compensated tallies (use the 1x1-vs-RxC "
                      "CSV diff instead)");
      NEUTRAL_REQUIRE(record_dir.empty(),
                      "--record-dir is not supported with --domains");
      const auto [rows, cols] = parse_domain_grid(domains);
      const std::string shard_note =
          shards > 1 ? " x " + std::to_string(shards) + " bank shards" : "";
      std::printf("# neutral_batch (%s)\n", host_banner().c_str());
      std::printf("# %zu sweep jobs, each decomposed over a %dx%d domain "
                  "grid%s (sweep scheme/layout respected)\n",
                  sweep_jobs.size(), rows, cols, shard_note.c_str());
      ResultTable table(
          "neutral_batch — " + std::to_string(sweep_jobs.size()) +
              " jobs x " + domains + " domains",
          {"job", "label", "particles", "tally", "grid", "shards", "events",
           "migrations", "rounds", "peak slab [MiB]", "peak bank [MiB]",
           "tally checksum", "population", "status"});
      bool domains_ok = true;
      PhaseProfiler::Report sweep_phases;
      for (const Job& job : sweep_jobs) {
        SimulationConfig config = job.config;
        // Domain jobs carry custom work closures, so the engine's profile
        // stamp never reaches them — bake the flag into the base config
        // run_domains propagates to every subdomain Simulation.
        if (options.profile) config.profile = true;
        // Domains compose with every scheme x layout now, so the sweep's
        // axes run as declared.  The tally mode DEFAULTS to atomic — the
        // deferred mode expand_sweep defaults over-events jobs to buffers
        // deposits per thread, which would dwarf the slab (the very
        // footprint --domains exists to shrink) and make identical
        // physics report different peak bytes per row; run_domains forces
        // compensation, so atomic is exact for both schemes.  A mode the
        // spec NAMED is an explicit experimental choice and is kept, per
        // the SweepSpec::tally_mode_named contract.
        if (!spec.tally_mode_named) config.tally_mode = TallyMode::kAtomic;
        DomainOptions domain_options;
        domain_options.rows = rows;
        domain_options.cols = cols;
        domain_options.shards = shards > 0 ? shards : 1;
        domain_options.group = job.id + 1;
        domain_options.threads_per_domain =
            options.threads_per_job > 0 ? options.threads_per_job : 1;
        const DomainRunReport report =
            run_domains(engine, config, domain_options);
        if (report.ok) sweep_phases += report.merged.phases;
        if (!quiet) {
          std::printf("done %-44s %s\n", job.label.c_str(),
                      report.ok ? "ok" : report.error.c_str());
        }
        if (!report.ok) {
          domains_ok = false;
          table.add_row({std::to_string(job.id), job.label,
                         ResultTable::cell(
                             static_cast<long>(config.deck.n_particles)),
                         to_string(config.tally_mode), domains, "-", "-",
                         "-", "-", "-", "-", "-", "-",
                         (report.timed_out ? "TIMEOUT: " : "FAIL: ") +
                             report.error});
          continue;
        }
        const bool conserved = report.merged.budget.conserved(1e-9);
        if (!conserved) domains_ok = false;  // never bury it in the CSV
        table.add_row(
            {std::to_string(job.id), job.label,
             ResultTable::cell(static_cast<long>(config.deck.n_particles)),
             to_string(config.tally_mode),
             std::to_string(report.grid.rows) + "x" +
                 std::to_string(report.grid.cols),
             std::to_string(report.shards),
             ResultTable::cell(static_cast<unsigned long long>(
                 report.merged.counters.total_events())),
             ResultTable::cell(
                 static_cast<unsigned long long>(report.migrations)),
             std::to_string(report.rounds),
             ResultTable::cell(
                 static_cast<double>(report.peak_mesh_bytes) / (1 << 20),
                 3),
             ResultTable::cell(
                 static_cast<double>(report.merged.peak_bank_bytes) /
                     (1 << 20),
                 3),
             ResultTable::cell_full(report.merged.tally_checksum),
             ResultTable::cell(static_cast<long>(report.merged.population)),
             conserved ? "ok" : "NOT CONSERVED"});
      }
      table.print();
      table.write_csv(csv);
      std::printf("wrote %s\n", csv.c_str());
      if (options.profile) {
        std::fputs(
            format_grind_table(sweep_phases, PhaseProfiler::tsc_ghz())
                .c_str(),
            stdout);
      }
      return domains_ok ? 0 : 1;
    }

    // --shards: every sweep job becomes a fork-join group of shard jobs;
    // groups are reduced back to one row each after the run.
    std::vector<Job> jobs;
    if (shards >= 1) {
      // An explicit --threads-per-job must pass through the engine's
      // oversubscription clamp before it is baked into shard configs —
      // make_shard_jobs pins config.threads, which the worker loop then
      // honours as given.
      const std::int32_t threads_per_shard =
          options.threads_per_job > 0
              ? engine
                    .thread_budget(sweep_jobs.size() *
                                   static_cast<std::size_t>(shards))
                    .second
              : 0;
      jobs.reserve(sweep_jobs.size() * static_cast<std::size_t>(shards));
      for (const Job& job : sweep_jobs) {
        ShardOptions shard_options;
        shard_options.shards = shards;
        shard_options.threads_per_shard = threads_per_shard;
        shard_options.priority = job.priority;
        shard_options.group = job.id + 1;  // non-zero, unique per group
        std::vector<Job> group = make_shard_jobs(
            job.config, shard_options,
            job.id * static_cast<std::uint64_t>(shards), job.label + "/");
        for (Job& shard_job : group) jobs.push_back(std::move(shard_job));
      }
    } else {
      jobs = sweep_jobs;
    }
    const auto [workers, threads_per_job] =
        engine.thread_budget(jobs.size());
    std::printf("# neutral_batch (%s)\n", host_banner().c_str());
    std::printf("# %zu jobs on %d workers x %d threads/job (queue %zu, "
                "world cache %s)\n",
                jobs.size(), workers, threads_per_job,
                engine.queue_depth(workers),
                options.reuse_worlds ? "on" : "off");
    if (shards >= 1) {
      std::printf("# sharding: %zu sweep jobs x %d shards, deterministic "
                  "reduction\n",
                  sweep_jobs.size(), shards);
    }

    const BatchReport report = engine.run(
        std::move(jobs), [&](const JobOutcome& outcome) {
          if (quiet) return;
          if (outcome.ok) {
            std::printf("[worker %d] done %-44s %8.3fs  %10.3g ev/s%s\n",
                        outcome.worker, outcome.label.c_str(),
                        outcome.seconds,
                        outcome.result.events_per_second(),
                        outcome.world_cache_hit ? "  (cached world)" : "");
          } else {
            std::printf("[worker %d] FAIL %s: %s\n", outcome.worker,
                        outcome.label.c_str(), outcome.error.c_str());
          }
        });

    bool tables_ok = true;  // any non-ok row must fail the exit status
    if (shards >= 1) {
      // Reduce each contiguous fork-join group back to one sweep row.
      // plan_shards clamps tiny decks, so group sizes can differ.
      ResultTable table(
          "neutral_batch — " + std::to_string(sweep_jobs.size()) +
              " sweep jobs x " + std::to_string(shards) + " shards",
          {"job", "label", "particles", "tally", "shards", "events",
           "max shard [s]", "imbalance", "tally checksum", "population",
           "status"});
      std::size_t next = 0;
      for (const Job& job : sweep_jobs) {
        const std::size_t group_size = std::min<std::size_t>(
            static_cast<std::size_t>(shards),
            static_cast<std::size_t>(job.config.deck.n_particles));
        const batch::GroupReduction group =
            batch::reduce_outcome_group(&report.jobs.at(next), group_size);
        next += group_size;

        if (!group.ok) {
          tables_ok = false;
          table.add_row({std::to_string(job.id), job.label,
                         ResultTable::cell(
                             static_cast<long>(job.config.deck.n_particles)),
                         to_string(job.config.tally_mode),
                         std::to_string(group_size), "-", "-", "-", "-", "-",
                         (group.timed_out ? "TIMEOUT: " : "FAIL: ") +
                             group.error});
          continue;
        }
        const bool conserved = group.merged.budget.conserved(1e-9);
        if (!conserved) tables_ok = false;
        table.add_row(
            {std::to_string(job.id), job.label,
             ResultTable::cell(static_cast<long>(job.config.deck.n_particles)),
             to_string(job.config.tally_mode),
             std::to_string(group_size),
             ResultTable::cell(static_cast<unsigned long long>(
                 group.merged.counters.total_events())),
             ResultTable::cell(group.max_shard_seconds, 3),
             ResultTable::cell(group.imbalance(), 2),
             ResultTable::cell_full(group.merged.tally_checksum),
             ResultTable::cell(static_cast<long>(group.merged.population)),
             conserved ? "ok" : "NOT CONSERVED"});
      }
      table.print();
      table.write_csv(csv);
      std::printf("wrote %s\n", csv.c_str());
      if (!tables_ok) {
        std::printf("sharding       : at least one group failed to reduce\n");
      }
    } else {
      ResultTable table(
          "neutral_batch — " + std::to_string(report.jobs.size()) + " jobs",
          result_columns());
      for (const JobOutcome& j : report.jobs) {
        const bool conserved =
            !j.ok || j.result.budget.conserved(1e-9);
        if (!conserved) tables_ok = false;
        table.add_row(
            {std::to_string(j.job_id), j.label,
             ResultTable::cell(static_cast<long>(j.config.deck.n_particles)),
             to_string(j.config.tally_mode),
             ResultTable::cell(static_cast<unsigned long long>(
                 j.result.counters.total_events())),
             ResultTable::cell(j.result.events_per_second(), 3),
             ResultTable::cell(j.seconds, 3),
             ResultTable::cell_full(j.result.tally_checksum),
             ResultTable::cell(static_cast<long>(j.result.population)),
             j.world_cache_hit ? "cached" : "built",
             std::to_string(j.worker),
             conserved ? outcome_cell(j) : "NOT CONSERVED"});
      }
      table.print();
      table.write_csv(csv);
      std::printf("wrote %s\n", csv.c_str());
    }

    std::printf("\n== batch report ==\n");
    std::printf("jobs           : %zu completed, %zu failed (%zu cancelled, "
                "%zu timed out)\n",
                report.completed(), report.failed(), report.cancelled(),
                report.timed_out());
    std::printf("pool           : %d workers x %d threads/job\n",
                report.workers, report.threads_per_job);
    std::printf("wallclock      : %.3f s   (%.3g events/s aggregate)\n",
                report.wall_seconds, report.events_per_second());
    std::printf("world cache    : %llu hits / %llu misses (%.0f%% hit rate), "
                "%llu evictions; %llu worlds / %.1f MiB resident\n",
                static_cast<unsigned long long>(report.cache.hits),
                static_cast<unsigned long long>(report.cache.misses),
                100.0 * report.cache.hit_rate(),
                static_cast<unsigned long long>(report.cache.evictions),
                static_cast<unsigned long long>(report.cache.resident_worlds),
                static_cast<double>(report.cache.resident_bytes) /
                    (1 << 20));
    if (options.profile) {
      std::fputs(format_grind_table(report.phase_totals(),
                                    PhaseProfiler::tsc_ghz())
                     .c_str(),
                 stdout);
    }

    bool ok = report.failed() == 0 && tables_ok;
    if (!record_dir.empty()) {
      for (const JobOutcome& j : report.jobs) {
        if (!j.ok) continue;
        save_results(make_expected(j.config, j.result),
                     record_dir + "/job_" + std::to_string(j.job_id) +
                         ".results");
      }
      std::printf("records        : wrote %zu .results files to %s\n",
                  report.completed(), record_dir.c_str());
    }
    if (check_serial) {
      std::size_t matched = 0;
      for (const JobOutcome& j : report.jobs) {
        if (j.ok && check_against_serial(j)) ++matched;
      }
      const bool all = matched == report.completed();
      std::printf("serial check   : %zu/%zu jobs bit-identical to serial "
                  "runs -> %s\n",
                  matched, report.completed(), all ? "PASS" : "FAIL");
      ok = ok && all;
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "neutral_batch: %s\n", e.what());
    return 2;
  }
}
